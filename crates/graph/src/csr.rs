//! Immutable CSR graph representation.

use std::fmt;

/// Dense node identifier in `0..n`.
pub type NodeId = u32;

/// Stable identifier of a canonical undirected edge (`0..m`).
pub type EdgeId = u32;

/// Provenance tag attached by the generators.
///
/// The spectral code in `sodiff-linalg` uses this to dispatch to analytic
/// eigenvalue formulas when they exist; everything else falls back to
/// numerical solvers. A graph assembled by hand through
/// [`crate::GraphBuilder`] is always [`GraphKind::Generic`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphKind {
    /// No structural information.
    Generic,
    /// A k-dimensional torus with the given side lengths (row-major layout).
    Torus(Vec<u32>),
    /// A hypercube of the given dimension (`n = 2^dim`).
    Hypercube(u32),
    /// A cycle on `n` nodes.
    Cycle,
    /// A path on `n` nodes.
    Path,
    /// The complete graph on `n` nodes.
    Complete,
    /// A star: node 0 is the hub.
    Star,
}

/// An immutable undirected graph in compressed-sparse-row form.
///
/// Every undirected edge `{u, v}` is stored exactly once in the canonical
/// edge list with `u < v`, and appears in the adjacency of both endpoints
/// together with its [`EdgeId`]. Self-loops and parallel edges are rejected
/// at construction time.
///
/// The adjacency is stored as a structure-of-arrays: per directed arc the
/// neighbor id, the edge id, and the orientation sign live in three flat
/// parallel arrays ([`Self::arc_targets`], [`Self::arc_edge_ids`],
/// [`Self::arc_orientations`]), so kernel code that only needs one of the
/// three streams (the simulator's apply pass, BFS, the rounding framework)
/// touches a third of the memory an array-of-pairs layout would.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// CSR offsets, length `n + 1`.
    offsets: Vec<usize>,
    /// Arc-indexed neighbor ids.
    adj_nodes: Vec<NodeId>,
    /// Arc-indexed edge ids.
    adj_edges: Vec<EdgeId>,
    /// Arc-indexed orientation signs: `+1` when the owning node is the
    /// canonical tail of the arc's edge, `-1` otherwise.
    adj_signs: Vec<i8>,
    /// Canonical edge list, `edges[e] = (u, v)` with `u < v`.
    edges: Vec<(NodeId, NodeId)>,
    kind: GraphKind,
}

impl Graph {
    pub(crate) fn from_parts(
        offsets: Vec<usize>,
        adj_nodes: Vec<NodeId>,
        adj_edges: Vec<EdgeId>,
        edges: Vec<(NodeId, NodeId)>,
        kind: GraphKind,
    ) -> Self {
        debug_assert_eq!(*offsets.last().unwrap(), adj_nodes.len());
        debug_assert_eq!(adj_nodes.len(), adj_edges.len());
        debug_assert_eq!(adj_nodes.len(), 2 * edges.len());
        let mut adj_signs = vec![0i8; adj_nodes.len()];
        for v in 0..offsets.len() - 1 {
            for p in offsets[v]..offsets[v + 1] {
                adj_signs[p] = if (v as NodeId) < adj_nodes[p] { 1 } else { -1 };
            }
        }
        Self {
            offsets,
            adj_nodes,
            adj_edges,
            adj_signs,
            edges,
            kind,
        }
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.node_count() as NodeId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Minimum degree over all nodes (0 for the empty graph).
    pub fn min_degree(&self) -> usize {
        (0..self.node_count() as NodeId)
            .map(|v| self.degree(v))
            .min()
            .unwrap_or(0)
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.node_count() as NodeId
    }

    /// The neighbors of `v` with the id of the connecting edge.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        let r = self.arc_range(v);
        self.adj_nodes[r.clone()]
            .iter()
            .copied()
            .zip(self.adj_edges[r].iter().copied())
    }

    /// The neighbor ids of `v` (arc order).
    #[inline]
    pub fn neighbor_nodes(&self, v: NodeId) -> &[NodeId] {
        &self.adj_nodes[self.arc_range(v)]
    }

    /// The incident edge ids of `v` (arc order).
    #[inline]
    pub fn neighbor_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.adj_edges[self.arc_range(v)]
    }

    /// Orientation signs of `v`'s incident edges (arc order): `+1` when
    /// `v` is the canonical tail, `-1` otherwise.
    #[inline]
    pub fn neighbor_signs(&self, v: NodeId) -> &[i8] {
        &self.adj_signs[self.arc_range(v)]
    }

    /// Number of directed arcs (`2·m`); arcs are the entries of the flat
    /// adjacency arrays, so arc `p` in [`Self::arc_range`]`(v)` is the
    /// directed half-edge leaving `v` towards `self.arc_targets()[p]`.
    #[inline]
    pub fn arc_count(&self) -> usize {
        self.adj_nodes.len()
    }

    /// The full arc-indexed neighbor array (see [`Self::arc_range`]).
    #[inline]
    pub fn arc_targets(&self) -> &[NodeId] {
        &self.adj_nodes
    }

    /// The full arc-indexed edge-id array.
    #[inline]
    pub fn arc_edge_ids(&self) -> &[EdgeId] {
        &self.adj_edges
    }

    /// The full arc-indexed orientation-sign array (`+1` = arc leaves the
    /// canonical tail of its edge).
    #[inline]
    pub fn arc_orientations(&self) -> &[i8] {
        &self.adj_signs
    }

    /// The arc-index range owned by node `v` (positions into the flat
    /// adjacency array). Used by the parallel executor to give every node
    /// an exclusive, contiguous slice of per-arc state.
    #[inline]
    pub fn arc_range(&self, v: NodeId) -> std::ops::Range<usize> {
        let v = v as usize;
        self.offsets[v]..self.offsets[v + 1]
    }

    /// The canonical endpoints `(u, v)` with `u < v` of edge `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e as usize]
    }

    /// All canonical edges in id order.
    #[inline]
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Sign convention for flows: `+1` if `v` is the canonical tail
    /// (`v == min(u, w)`) of edge `e`, `-1` otherwise.
    ///
    /// Flow values in `sodiff-core` are stored per canonical edge; a
    /// positive value means load moving from the smaller to the larger
    /// endpoint.
    #[inline]
    pub fn orientation(&self, v: NodeId, e: EdgeId) -> f64 {
        if self.edges[e as usize].0 == v {
            1.0
        } else {
            -1.0
        }
    }

    /// Returns `true` if `u` and `v` are adjacent.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbor_nodes(a).contains(&b)
    }

    /// Structural provenance set by the generator that produced this graph.
    #[inline]
    pub fn kind(&self) -> &GraphKind {
        &self.kind
    }

    pub(crate) fn set_kind(&mut self, kind: GraphKind) {
        self.kind = kind;
    }

    /// The diffusion weight `α_{u,v} = 1 / (max(deg u, deg v) + 1)` used by
    /// the paper for both FOS and SOS (Section II).
    #[inline]
    pub fn alpha(&self, u: NodeId, v: NodeId) -> f64 {
        1.0 / (self.degree(u).max(self.degree(v)) as f64 + 1.0)
    }

    /// Returns `true` if the graph has a single connected component.
    ///
    /// The empty graph and the single-node graph count as connected.
    pub fn is_connected(&self) -> bool {
        crate::traversal::connected_components(self) <= 1
    }

    /// Heap bytes of the graph's CSR arrays: the offsets, the three
    /// arc-indexed adjacency streams, and the canonical edge list.
    /// Useful together with the simulator's state accounting when sizing
    /// runs against available memory (a 10⁸-edge graph is ~2.9 GB here).
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.offsets.len() * size_of::<usize>()
            + self.adj_nodes.len() * size_of::<NodeId>()
            + self.adj_edges.len() * size_of::<EdgeId>()
            + self.adj_signs.len() * size_of::<i8>()
            + self.edges.len() * size_of::<(NodeId, NodeId)>()
    }

    /// Returns a copy of this graph with canonical edge ids renumbered
    /// in **cache-blocked order**: edges are grouped by the
    /// `block_nodes`-sized block of their canonical tail, with ties
    /// broken by the head's block and then by the original id, so the
    /// reordering is deterministic. Per-edge state vectors indexed by
    /// [`EdgeId`] (integral flows, SOS flow memory) then stream in the
    /// same block-major order as the per-node load vectors during the
    /// edge and apply passes, which cuts cache misses on graphs much
    /// larger than the last-level cache.
    ///
    /// Edge ids are part of the simulation's deterministic surface (the
    /// per-(edge, round) RNG streams key on them), so a reordered graph
    /// runs a *different but equally valid* simulation. For that reason
    /// no generator applies this automatically — it is strictly opt-in.
    ///
    /// # Panics
    ///
    /// Panics if `block_nodes` is zero.
    pub fn reorder_edges_blocked(&self, block_nodes: usize) -> Graph {
        assert!(block_nodes > 0, "block_nodes must be positive");
        let m = self.edge_count();
        let mut order: Vec<EdgeId> = (0..m as EdgeId).collect();
        order.sort_unstable_by_key(|&e| {
            let (u, v) = self.edges[e as usize];
            (u as usize / block_nodes, v as usize / block_nodes, e)
        });
        let mut perm = vec![0 as EdgeId; m]; // old id -> new id
        for (new_id, &old_id) in order.iter().enumerate() {
            perm[old_id as usize] = new_id as EdgeId;
        }
        Graph {
            offsets: self.offsets.clone(),
            adj_nodes: self.adj_nodes.clone(),
            adj_edges: self.adj_edges.iter().map(|&e| perm[e as usize]).collect(),
            adj_signs: self.adj_signs.clone(),
            edges: order.iter().map(|&old| self.edges[old as usize]).collect(),
            kind: self.kind.clone(),
        }
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count())
            .field("kind", &self.kind)
            .finish()
    }
}

/// A dynamic node-activation overlay over an immutable [`Graph`].
///
/// The CSR arrays never change after construction; live-topology churn
/// instead treats the graph's `n` node slots as **reserved capacity** and
/// tracks which slots are currently active (a machine is present and
/// serving load) in this bitmask. Simulators mask out edges with an
/// inactive endpoint, so a deactivated slot is invisible to the flow
/// passes until it is reactivated — no re-indexing, no CSR rebuild.
///
/// The words are in the same `n`-bit little-endian layout as the edge
/// bitmasks used by [`crate::matching::mask_dead_edges`], so an overlay
/// can be fed straight into the matching-repair routines as the
/// `live_nodes` argument.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ActiveSet {
    /// `capacity`-bit mask, bit `v` set ⇔ slot `v` active.
    words: Vec<u64>,
    /// Number of node slots covered (the owning graph's `n`).
    capacity: usize,
    /// Number of set bits, maintained incrementally.
    active: usize,
}

impl ActiveSet {
    /// An overlay over `capacity` node slots with every slot active.
    pub fn all_active(capacity: usize) -> Self {
        let mut words = vec![u64::MAX; capacity.div_ceil(64).max(1)];
        let tail = capacity % 64;
        if tail != 0 {
            *words.last_mut().unwrap() = (1u64 << tail) - 1;
        } else if capacity == 0 {
            words[0] = 0;
        }
        Self {
            words,
            capacity,
            active: capacity,
        }
    }

    /// Rebuilds an overlay from checkpointed mask words. Bits at or above
    /// `capacity` are cleared, so the popcount invariant holds for any
    /// input.
    pub fn from_words(capacity: usize, mut words: Vec<u64>) -> Self {
        words.resize(capacity.div_ceil(64).max(1), 0);
        let tail = capacity % 64;
        if tail != 0 {
            *words.last_mut().unwrap() &= (1u64 << tail) - 1;
        } else if capacity == 0 {
            words[0] = 0;
        }
        let active = words.iter().map(|w| w.count_ones() as usize).sum();
        Self {
            words,
            capacity,
            active,
        }
    }

    /// Number of node slots covered.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently active slots.
    #[inline]
    pub fn active_count(&self) -> usize {
        self.active
    }

    /// Returns `true` if slot `v` is active.
    #[inline]
    pub fn is_active(&self, v: NodeId) -> bool {
        (self.words[(v >> 6) as usize] >> (v & 63)) & 1 == 1
    }

    /// Activates slot `v`; returns `true` if the slot was inactive.
    pub fn activate(&mut self, v: NodeId) -> bool {
        debug_assert!((v as usize) < self.capacity);
        let w = &mut self.words[(v >> 6) as usize];
        let bit = 1u64 << (v & 63);
        let changed = *w & bit == 0;
        *w |= bit;
        // Branchy on purpose: `self.active += usize::from(changed)` is
        // const-folded incorrectly by some rustc builds at opt-level >= 2
        // (the popcount invariant silently breaks); the branch is not.
        if changed {
            self.active += 1;
        }
        changed
    }

    /// Deactivates slot `v`; returns `true` if the slot was active.
    pub fn deactivate(&mut self, v: NodeId) -> bool {
        debug_assert!((v as usize) < self.capacity);
        let w = &mut self.words[(v >> 6) as usize];
        let bit = 1u64 << (v & 63);
        let changed = *w & bit != 0;
        *w &= !bit;
        // Branchy on purpose — see `activate`.
        if changed {
            self.active -= 1;
        }
        changed
    }

    /// The raw mask words (little-endian bit order, `capacity` valid
    /// bits). Directly usable as the `live_nodes` argument of
    /// [`crate::matching::mask_dead_edges`] /
    /// [`crate::matching::repair_matching`], and as the checkpoint
    /// serialization of the overlay.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        b.add_edge(0, 2).unwrap();
        b.build()
    }

    #[test]
    fn triangle_counts() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 2);
    }

    #[test]
    fn canonical_edges_are_ordered() {
        let g = triangle();
        for &(u, v) in g.edges() {
            assert!(u < v);
        }
    }

    #[test]
    fn orientation_signs() {
        let g = triangle();
        for e in 0..g.edge_count() as EdgeId {
            let (u, v) = g.edge(e);
            assert_eq!(g.orientation(u, e), 1.0);
            assert_eq!(g.orientation(v, e), -1.0);
        }
    }

    #[test]
    fn neighbors_are_symmetric() {
        let g = triangle();
        for u in g.nodes() {
            for (v, e) in g.neighbors(u) {
                assert!(g.neighbors(v).any(|(w, e2)| w == u && e2 == e));
            }
        }
    }

    #[test]
    fn soa_views_agree_with_neighbors() {
        let g = triangle();
        for u in g.nodes() {
            let pairs: Vec<_> = g.neighbors(u).collect();
            let nodes = g.neighbor_nodes(u);
            let edges = g.neighbor_edges(u);
            let signs = g.neighbor_signs(u);
            assert_eq!(pairs.len(), nodes.len());
            assert_eq!(pairs.len(), edges.len());
            assert_eq!(pairs.len(), signs.len());
            for (k, &(v, e)) in pairs.iter().enumerate() {
                assert_eq!(nodes[k], v);
                assert_eq!(edges[k], e);
                let expected = if u < v { 1 } else { -1 };
                assert_eq!(signs[k], expected);
                assert_eq!(signs[k] as f64, g.orientation(u, e));
            }
        }
        // The flat arrays are the concatenation of the per-node views.
        assert_eq!(g.arc_targets().len(), g.arc_count());
        assert_eq!(g.arc_edge_ids().len(), g.arc_count());
        assert_eq!(g.arc_orientations().len(), g.arc_count());
        for u in g.nodes() {
            let r = g.arc_range(u);
            assert_eq!(&g.arc_targets()[r.clone()], g.neighbor_nodes(u));
            assert_eq!(&g.arc_edge_ids()[r.clone()], g.neighbor_edges(u));
            assert_eq!(&g.arc_orientations()[r], g.neighbor_signs(u));
        }
    }

    #[test]
    fn has_edge_matches_adjacency() {
        let g = triangle();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).unwrap();
        b.add_edge(2, 3).unwrap();
        let g = b.build();
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn alpha_uses_max_degree_plus_one() {
        let mut b = GraphBuilder::new(4);
        // Star centered at 0 with 3 leaves: deg(0)=3, deg(leaf)=1.
        b.add_edge(0, 1).unwrap();
        b.add_edge(0, 2).unwrap();
        b.add_edge(0, 3).unwrap();
        let g = b.build();
        assert_eq!(g.alpha(0, 1), 0.25);
        assert_eq!(g.alpha(1, 0), 0.25);
    }

    #[test]
    fn memory_bytes_counts_all_arrays() {
        let g = triangle();
        // 4 offsets × 8 + 6 arcs × (4 + 4 + 1) + 3 edges × 8.
        assert_eq!(g.memory_bytes(), 4 * 8 + 6 * 9 + 3 * 8);
    }

    #[test]
    fn blocked_reorder_preserves_structure() {
        let g = crate::generators::torus2d(6, 5);
        let b = g.reorder_edges_blocked(8);
        assert_eq!(b.node_count(), g.node_count());
        assert_eq!(b.edge_count(), g.edge_count());
        assert_eq!(b.kind(), g.kind());
        // Same adjacency structure: per-node neighbor sets are unchanged
        // (edge ids differ), and the edge list is a permutation.
        for u in g.nodes() {
            assert_eq!(b.neighbor_nodes(u), g.neighbor_nodes(u));
            assert_eq!(b.neighbor_signs(u), g.neighbor_signs(u));
        }
        let mut before: Vec<_> = g.edges().to_vec();
        let mut after: Vec<_> = b.edges().to_vec();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
        // Canonical orientation survives, and arc edge ids stay in sync
        // with the permuted edge list.
        for u in b.nodes() {
            for (v, e) in b.neighbors(u) {
                let (lo, hi) = b.edge(e);
                assert_eq!((lo, hi), (u.min(v), u.max(v)));
            }
        }
    }

    #[test]
    fn blocked_reorder_groups_by_tail_block() {
        let g = crate::generators::torus2d(8, 8);
        let b = g.reorder_edges_blocked(16);
        let blocks: Vec<usize> = b.edges().iter().map(|&(u, _)| u as usize / 16).collect();
        assert!(
            blocks.windows(2).all(|w| w[0] <= w[1]),
            "tail blocks sorted"
        );
    }

    #[test]
    fn debug_is_compact() {
        let g = triangle();
        let s = format!("{g:?}");
        assert!(s.contains("nodes"));
        assert!(s.contains('3'));
    }

    #[test]
    fn active_set_starts_full_and_tracks_toggles() {
        for n in [1usize, 63, 64, 65, 130] {
            let mut a = ActiveSet::all_active(n);
            assert_eq!(a.capacity(), n);
            assert_eq!(a.active_count(), n);
            assert!((0..n as NodeId).all(|v| a.is_active(v)));
            // Bits above capacity are never set (tail word is clean).
            let popcount: usize = a.words().iter().map(|w| w.count_ones() as usize).sum();
            assert_eq!(popcount, n);
            assert!(a.deactivate(0));
            assert!(!a.deactivate(0), "double-deactivate is a no-op");
            assert_eq!(a.active_count(), n - 1);
            assert!(!a.is_active(0));
            assert!(a.activate(0));
            assert!(!a.activate(0), "double-activate is a no-op");
            assert_eq!(a.active_count(), n);
        }
    }

    #[test]
    fn active_set_round_trips_through_words() {
        let mut a = ActiveSet::all_active(70);
        a.deactivate(3);
        a.deactivate(69);
        let b = ActiveSet::from_words(70, a.words().to_vec());
        assert_eq!(a, b);
        assert_eq!(b.active_count(), 68);
        // Garbage bits above capacity are scrubbed on restore.
        let c = ActiveSet::from_words(70, vec![u64::MAX, u64::MAX]);
        assert_eq!(c.active_count(), 70);
    }

    #[test]
    fn active_set_words_feed_matching_repair() {
        let g = crate::generators::cycle(6);
        let mut a = ActiveSet::all_active(6);
        a.deactivate(2);
        let mut mask = vec![(1u64 << g.edge_count()) - 1];
        crate::matching::mask_dead_edges(&g, a.words(), &mut mask);
        for (e, &(u, v)) in g.edges().iter().enumerate() {
            let kept = (mask[0] >> e) & 1 == 1;
            assert_eq!(kept, u != 2 && v != 2);
        }
    }
}
