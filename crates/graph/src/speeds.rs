//! Processor speeds for the heterogeneous network model.
//!
//! In the paper's model every node `i` has a speed `s_i ≥ 1` (minimum speed
//! normalized to 1) and the balanced load of node `i` is `x̄_i = m·s_i/s`
//! with `s = Σ s_i`. The homogeneous model is the special case `s_i = 1`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Per-node processor speeds `s_i ≥ 1`.
///
/// # Example
///
/// ```
/// use sodiff_graph::Speeds;
///
/// let s = Speeds::two_class(4, 2, 8.0);
/// assert_eq!(s.len(), 4);
/// assert_eq!(s.max(), 8.0);
/// assert_eq!(s.total(), 2.0 + 2.0 * 8.0);
/// assert!(!s.is_uniform());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Speeds {
    values: Vec<f64>,
    total: f64,
    max: f64,
    uniform: bool,
}

impl Speeds {
    /// Wraps explicit speed values.
    ///
    /// # Panics
    ///
    /// Panics if any speed is below 1 or not finite (the model normalizes
    /// the minimum speed to 1).
    pub fn new(values: Vec<f64>) -> Self {
        assert!(
            values.iter().all(|&s| s.is_finite() && s >= 1.0),
            "speeds must be finite and >= 1"
        );
        let total = values.iter().sum();
        let max = values.iter().copied().fold(1.0, f64::max);
        let uniform = values.windows(2).all(|w| w[0] == w[1]);
        Self {
            values,
            total,
            max,
            uniform,
        }
    }

    /// The homogeneous model: `n` nodes of speed 1.
    pub fn uniform(n: usize) -> Self {
        Self {
            values: vec![1.0; n],
            total: n as f64,
            max: 1.0,
            uniform: true,
        }
    }

    /// Two speed classes: the first `fast_count` nodes run at `fast_speed`,
    /// the rest at speed 1.
    pub fn two_class(n: usize, fast_count: usize, fast_speed: f64) -> Self {
        assert!(fast_count <= n);
        let mut values = vec![1.0; n];
        for v in values.iter_mut().take(fast_count) {
            *v = fast_speed;
        }
        Self::new(values)
    }

    /// Speeds drawn as `1 + (max_speed − 1)·U^exponent` with `U` uniform in
    /// `[0, 1]`; larger exponents skew towards slow nodes.
    pub fn random_skewed(n: usize, max_speed: f64, exponent: f64, seed: u64) -> Self {
        assert!(max_speed >= 1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let values = (0..n)
            .map(|_| 1.0 + (max_speed - 1.0) * rng.random_range(0.0..1.0f64).powf(exponent))
            .collect();
        Self::new(values)
    }

    /// A linear ramp of speeds from 1 (node 0) to `max_speed` (node n−1).
    pub fn linear_ramp(n: usize, max_speed: f64) -> Self {
        assert!(max_speed >= 1.0);
        if n <= 1 {
            return Self::uniform(n);
        }
        let values = (0..n)
            .map(|i| 1.0 + (max_speed - 1.0) * i as f64 / (n - 1) as f64)
            .collect();
        Self::new(values)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Speed of node `i`.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// All speeds.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// `s = Σ s_i`.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// `s_max`.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Returns `true` for the homogeneous model (all speeds equal).
    pub fn is_uniform(&self) -> bool {
        self.uniform
    }

    /// Returns `true` if every speed is exactly 1 (the normalized
    /// homogeneous model for which analytic spectra apply).
    pub fn is_unit(&self) -> bool {
        self.uniform && self.values.first().map(|&v| v == 1.0).unwrap_or(true)
    }

    /// The balanced (ideal) load `x̄_i = m·s_i/s` for total load `m`.
    pub fn balanced_load(&self, total_load: f64) -> Vec<f64> {
        self.values
            .iter()
            .map(|&s| total_load * s / self.total)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_properties() {
        let s = Speeds::uniform(10);
        assert!(s.is_uniform());
        assert_eq!(s.total(), 10.0);
        assert_eq!(s.max(), 1.0);
        assert_eq!(s.get(3), 1.0);
    }

    #[test]
    #[should_panic(expected = "speeds must be finite and >= 1")]
    fn rejects_sub_unit_speed() {
        Speeds::new(vec![1.0, 0.5]);
    }

    #[test]
    fn two_class_layout() {
        let s = Speeds::two_class(5, 2, 4.0);
        assert_eq!(s.as_slice(), &[4.0, 4.0, 1.0, 1.0, 1.0]);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn linear_ramp_endpoints() {
        let s = Speeds::linear_ramp(5, 9.0);
        assert_eq!(s.get(0), 1.0);
        assert_eq!(s.get(4), 9.0);
        assert!(!s.is_uniform());
    }

    #[test]
    fn random_skewed_within_bounds() {
        let s = Speeds::random_skewed(100, 16.0, 2.0, 7);
        assert!(s.as_slice().iter().all(|&v| (1.0..=16.0).contains(&v)));
        assert_eq!(s, Speeds::random_skewed(100, 16.0, 2.0, 7));
    }

    #[test]
    fn balanced_load_is_proportional() {
        let s = Speeds::new(vec![1.0, 3.0]);
        let bal = s.balanced_load(100.0);
        assert_eq!(bal, vec![25.0, 75.0]);
    }

    #[test]
    fn single_constant_speed_is_uniform() {
        // All nodes at the same non-1 speed is still "uniform" for the
        // analytic-spectrum dispatch... except the model scales differ.
        let s = Speeds::new(vec![2.0, 2.0]);
        assert!(s.is_uniform());
    }
}
