//! Breadth-first traversal, connectivity, and distance utilities.

use std::collections::VecDeque;

use crate::csr::{Graph, NodeId};

/// Sentinel distance for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// BFS distances from `source`; unreachable nodes get [`UNREACHABLE`].
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.node_count()];
    if g.node_count() == 0 {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbor_nodes(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Labels each node with a component id in `0..k`; returns the labels.
pub fn component_labels(g: &Graph) -> Vec<u32> {
    let n = g.node_count();
    let mut label = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n as NodeId {
        if label[start as usize] != u32::MAX {
            continue;
        }
        label[start as usize] = next;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbor_nodes(u) {
                if label[v as usize] == u32::MAX {
                    label[v as usize] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    label
}

/// Number of connected components (0 for the empty graph).
pub fn connected_components(g: &Graph) -> usize {
    component_labels(g)
        .iter()
        .max()
        .map(|&m| m as usize + 1)
        .unwrap_or(0)
}

/// Eccentricity of `source`: the maximum BFS distance to any reachable node.
pub fn eccentricity(g: &Graph, source: NodeId) -> u32 {
    bfs_distances(g, source)
        .into_iter()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .unwrap_or(0)
}

/// Exact diameter via all-sources BFS.
///
/// Quadratic in the graph size; intended for the small instances used in
/// tests and spectral sanity checks. Returns 0 for graphs with fewer than
/// two nodes and `None` for disconnected graphs.
pub fn diameter(g: &Graph) -> Option<u32> {
    if !g.is_connected() {
        return None;
    }
    Some(
        (0..g.node_count() as NodeId)
            .map(|v| eccentricity(g, v))
            .max()
            .unwrap_or(0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::GraphBuilder;

    #[test]
    fn bfs_on_path() {
        let g = generators::path(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn unreachable_nodes_flagged() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).unwrap();
        let g = b.build();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn component_counts() {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1).unwrap();
        b.add_edge(2, 3).unwrap();
        let g = b.build();
        assert_eq!(connected_components(&g), 4); // {0,1},{2,3},{4},{5}
        let labels = component_labels(&g);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn diameter_of_known_graphs() {
        assert_eq!(diameter(&generators::cycle(8)), Some(4));
        assert_eq!(diameter(&generators::path(5)), Some(4));
        assert_eq!(diameter(&generators::complete(7)), Some(1));
        assert_eq!(diameter(&generators::torus2d(4, 4)), Some(4));
        assert_eq!(diameter(&generators::hypercube(5)), Some(5));
    }

    #[test]
    fn diameter_none_for_disconnected() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        assert_eq!(diameter(&b.build()), None);
    }

    #[test]
    fn eccentricity_center_vs_leaf() {
        let g = generators::path(9);
        assert_eq!(eccentricity(&g, 4), 4);
        assert_eq!(eccentricity(&g, 0), 8);
    }
}
