//! Edge colorings and maximal matchings: the pairwise-communication
//! schedules behind dimension-exchange and matching-based load balancing.
//!
//! Diffusion schemes exchange load over *all* edges simultaneously; their
//! classic counterparts communicate pairwise — each node talks to at most
//! one neighbor per round. The schedule of such a scheme is either
//!
//! * a proper **edge coloring**: each color class is a matching, and
//!   dimension exchange sweeps the classes round-robin so every edge is
//!   active once per sweep, or
//! * a sequence of **maximal matchings**: matching-based balancing runs
//!   one per round (round-robin over a precomputed family here, or a
//!   fresh random one drawn by the simulator).
//!
//! [`edge_coloring`] dispatches on the generator's [`GraphKind`] to exact
//! optimal colorings where the structure provides one (tori with even
//! sides and hypercubes achieve the chromatic index `Δ`), and falls back
//! to the deterministic [`greedy_edge_coloring`] (at most `2Δ − 1`
//! colors) everywhere else. [`maximal_matchings`] extends every color
//! class to a maximal matching, which keeps more nodes busy per round
//! than the bare class.
//!
//! All functions are deterministic: the same graph always produces the
//! same coloring and the same matchings.

use crate::csr::{EdgeId, Graph, GraphKind, NodeId};

/// A proper edge coloring: adjacent edges never share a color, so each
/// color class is a matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeColoring {
    /// Color of each canonical edge, in `0..num_colors`.
    colors: Vec<u32>,
    /// Number of colors used.
    num_colors: u32,
}

impl EdgeColoring {
    /// The color of edge `e`.
    #[inline]
    pub fn color(&self, e: EdgeId) -> u32 {
        self.colors[e as usize]
    }

    /// Per-edge colors, indexed by [`EdgeId`].
    #[inline]
    pub fn colors(&self) -> &[u32] {
        &self.colors
    }

    /// Number of colors (0 only for edgeless graphs).
    #[inline]
    pub fn num_colors(&self) -> u32 {
        self.num_colors
    }

    /// The edges of one color class, in edge-id order.
    pub fn class(&self, color: u32) -> Vec<EdgeId> {
        self.colors
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == color)
            .map(|(e, _)| e as EdgeId)
            .collect()
    }

    /// All color classes, indexed by color.
    pub fn classes(&self) -> Vec<Vec<EdgeId>> {
        let mut classes = vec![Vec::new(); self.num_colors as usize];
        for (e, &c) in self.colors.iter().enumerate() {
            classes[c as usize].push(e as EdgeId);
        }
        classes
    }

    /// Returns `true` if no two adjacent edges of `graph` share a color
    /// and every color below `num_colors` is in use.
    pub fn is_proper(&self, graph: &Graph) -> bool {
        if self.colors.len() != graph.edge_count() {
            return false;
        }
        let mut used = vec![false; self.num_colors as usize];
        for &c in &self.colors {
            match used.get_mut(c as usize) {
                Some(slot) => *slot = true,
                None => return false,
            }
        }
        if !used.iter().all(|&u| u) {
            return false;
        }
        for v in graph.nodes() {
            let incident = graph.neighbor_edges(v);
            for (i, &e1) in incident.iter().enumerate() {
                for &e2 in &incident[i + 1..] {
                    if self.colors[e1 as usize] == self.colors[e2 as usize] {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// A proper edge coloring of `graph`, exact where the generator's
/// structure provides one and greedy otherwise:
///
/// * **hypercubes** are colored by edge axis (`dim` colors — optimal),
/// * **tori** (and cycles/paths, their 1-D cases) are colored per axis:
///   2 colors for an even side, 3 for an odd side, 1 for a side of
///   length 2 — the cycle's chromatic index, summed over axes,
/// * everything else falls back to [`greedy_edge_coloring`]
///   (at most `2Δ − 1` colors).
///
/// Edgeless graphs get the empty coloring (`num_colors == 0`).
pub fn edge_coloring(graph: &Graph) -> EdgeColoring {
    match graph.kind().clone() {
        GraphKind::Hypercube(_) => hypercube_coloring(graph),
        GraphKind::Torus(dims) => torus_coloring(graph, &dims),
        GraphKind::Cycle => torus_coloring(graph, &[graph.node_count() as u32]),
        GraphKind::Path => path_coloring(graph),
        _ => greedy_edge_coloring(graph),
    }
}

/// Hypercube edges differ in exactly one bit; the bit index is a proper
/// coloring with `dim` colors (each class is the perfect matching along
/// that axis).
fn hypercube_coloring(graph: &Graph) -> EdgeColoring {
    let mut colors = Vec::with_capacity(graph.edge_count());
    let mut num_colors = 0u32;
    for &(u, v) in graph.edges() {
        let axis = (u ^ v).trailing_zeros();
        colors.push(axis);
        num_colors = num_colors.max(axis + 1);
    }
    EdgeColoring { colors, num_colors }
}

/// Colors used by one torus axis of side length `len`: the cycle's
/// chromatic index (sides of length 1 contribute no edges).
fn axis_colors(len: u32) -> u32 {
    match len {
        0 | 1 => 0,
        2 => 1, // wrap edge coincides with the direct edge (deduplicated)
        l if l % 2 == 0 => 2,
        _ => 3,
    }
}

/// Exact per-axis torus coloring: each axis is a disjoint family of
/// cycles, colored 2 (even side) or 3 (odd side) colors, with axes offset
/// into disjoint color ranges.
fn torus_coloring(graph: &Graph, dims: &[u32]) -> EdgeColoring {
    let mut strides = vec![1u64; dims.len()];
    for i in (0..dims.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * dims[i + 1] as u64;
    }
    let mut base = vec![0u32; dims.len()];
    let mut total = 0u32;
    for (a, &len) in dims.iter().enumerate() {
        base[a] = total;
        total += axis_colors(len);
    }
    let coord = |v: NodeId, a: usize| (v as u64 / strides[a]) % dims[a] as u64;
    let mut colors = Vec::with_capacity(graph.edge_count());
    for &(u, v) in graph.edges() {
        let axis = (0..dims.len())
            .find(|&a| coord(u, a) != coord(v, a))
            .expect("torus edge endpoints differ in exactly one axis");
        let len = dims[axis] as u64;
        let (cu, cv) = (coord(u, axis), coord(v, axis));
        // Cycle-edge index: a direct edge `c → c+1` sits at position
        // `min(cu, cv)`; the wrap edge `len−1 → 0` at position `len − 1`.
        let pos = if cu.abs_diff(cv) == 1 {
            cu.min(cv)
        } else {
            len - 1
        };
        let within = if len == 2 {
            0
        } else if len.is_multiple_of(2) {
            (pos % 2) as u32
        } else if pos == len - 1 {
            2 // the odd cycle's extra color for its closing edge
        } else {
            (pos % 2) as u32
        };
        colors.push(base[axis] + within);
    }
    EdgeColoring {
        colors,
        num_colors: total,
    }
}

/// Paths alternate two colors along the line (one color for a single
/// edge).
fn path_coloring(graph: &Graph) -> EdgeColoring {
    let mut colors = Vec::with_capacity(graph.edge_count());
    let mut num_colors = 0u32;
    for &(u, _) in graph.edges() {
        let c = u % 2;
        colors.push(c);
        num_colors = num_colors.max(c + 1);
    }
    EdgeColoring { colors, num_colors }
}

/// Deterministic greedy edge coloring: edges in id order each take the
/// smallest color unused at either endpoint. Uses at most `2Δ − 1`
/// colors (each endpoint blocks at most `Δ − 1` colors).
pub fn greedy_edge_coloring(graph: &Graph) -> EdgeColoring {
    const UNSET: u32 = u32::MAX;
    let m = graph.edge_count();
    let mut colors = vec![UNSET; m];
    let mut num_colors = 0u32;
    let cap = (2 * graph.max_degree()).saturating_sub(1).max(1);
    let mut used = vec![u32::MAX; cap]; // stamp buffer: used[c] == e means blocked
    for (e, &(u, v)) in graph.edges().iter().enumerate() {
        for w in [u, v] {
            for &e2 in graph.neighbor_edges(w) {
                let c = colors[e2 as usize];
                if c != UNSET {
                    used[c as usize] = e as u32;
                }
            }
        }
        let c = (0..cap as u32)
            .find(|&c| used[c as usize] != e as u32)
            .expect("greedy coloring always fits in 2*max_degree - 1 colors");
        colors[e] = c;
        num_colors = num_colors.max(c + 1);
    }
    EdgeColoring { colors, num_colors }
}

/// Returns `true` if `edges` is a matching of `graph` (no shared
/// endpoints).
pub fn is_matching(graph: &Graph, edges: &[EdgeId]) -> bool {
    let mut matched = vec![false; graph.node_count()];
    for &e in edges {
        let (u, v) = graph.edge(e);
        if matched[u as usize] || matched[v as usize] {
            return false;
        }
        matched[u as usize] = true;
        matched[v as usize] = true;
    }
    true
}

/// Returns `true` if `edges` is a maximal matching of `graph`: a matching
/// that no further edge can be added to.
pub fn is_maximal_matching(graph: &Graph, edges: &[EdgeId]) -> bool {
    let mut matched = vec![false; graph.node_count()];
    for &e in edges {
        let (u, v) = graph.edge(e);
        if matched[u as usize] || matched[v as usize] {
            return false;
        }
        matched[u as usize] = true;
        matched[v as usize] = true;
    }
    graph
        .edges()
        .iter()
        .all(|&(u, v)| matched[u as usize] || matched[v as usize])
}

/// One maximal matching per color class of `coloring`: the class is taken
/// as the base matching (proper classes are matchings by definition) and
/// extended greedily in edge-id order until maximal. Together the family
/// covers every edge at least once per sweep, and each round keeps more
/// nodes paired than the bare class would.
pub fn maximal_matchings(graph: &Graph, coloring: &EdgeColoring) -> Vec<Vec<EdgeId>> {
    let n = graph.node_count();
    let mut matched = vec![u32::MAX; n]; // stamp buffer keyed by color
    let mut out = Vec::with_capacity(coloring.num_colors() as usize);
    for c in 0..coloring.num_colors() {
        let mut matching = Vec::new();
        for (e, &(u, v)) in graph.edges().iter().enumerate() {
            if coloring.colors[e] == c {
                matched[u as usize] = c;
                matched[v as usize] = c;
                matching.push(e as EdgeId);
            }
        }
        for (e, &(u, v)) in graph.edges().iter().enumerate() {
            if matched[u as usize] != c && matched[v as usize] != c {
                matched[u as usize] = c;
                matched[v as usize] = c;
                matching.push(e as EdgeId);
            }
        }
        matching.sort_unstable();
        out.push(matching);
    }
    out
}

#[inline]
fn live(live_nodes: &[u64], v: NodeId) -> bool {
    (live_nodes[(v >> 6) as usize] >> (v & 63)) & 1 == 1
}

/// Clears the bits of the edge bitmask `mask` for every edge with a dead
/// endpoint. `live_nodes` is an `n`-bit mask (bit `v` set ⇔ node `v`
/// live); `mask` is an `m`-bit mask in the canonical edge-id order.
///
/// This is the incremental "mask-out" half of churn repair: a color class
/// of a proper [`edge_coloring`] stays a valid (possibly smaller)
/// matching after masking, with no recompute of the coloring.
pub fn mask_dead_edges(graph: &Graph, live_nodes: &[u64], mask: &mut [u64]) {
    for (e, &(u, v)) in graph.edges().iter().enumerate() {
        if !live(live_nodes, u) || !live(live_nodes, v) {
            mask[e >> 6] &= !(1u64 << (e & 63));
        }
    }
}

/// Incrementally repairs the matching bitmask `mask` after node churn:
/// masks out edges with a dead endpoint ([`mask_dead_edges`]), then
/// greedily re-covers the freed **live** nodes ([`extend_matching`]).
/// The result is again a matching, dead nodes are never matched, and the
/// repair is deterministic (same inputs, same output) and local: edges
/// between matched live nodes are untouched.
///
/// The repaired mask is a pure function of the *base* mask and the
/// *current* live set. Repair applied to an already-repaired mask is
/// history-dependent (an extension chosen under an old live set can
/// survive into the new one), so callers tracking churn epochs must
/// re-derive from the pristine base family each epoch — exactly what the
/// fault and churn simulators do — which is also what lets checkpoint
/// restore rematerialize repaired families from (base, current live set)
/// without replaying churn history (see the equivalence proptest below).
pub fn repair_matching(graph: &Graph, live_nodes: &[u64], mask: &mut [u64]) {
    mask_dead_edges(graph, live_nodes, mask);
    extend_matching(graph, live_nodes, mask);
}

/// Greedily extends the matching bitmask `mask` over the live nodes:
/// each unmatched live node (ascending id) takes its first incident edge
/// (adjacency order) whose other endpoint is live and unmatched. This is
/// the *join* half of incremental repair — when a node (re)activates, the
/// existing matching is extended locally to cover it instead of
/// recomputing the family from scratch.
///
/// `mask` must already be a matching whose edges have only live
/// endpoints (e.g. the output of [`mask_dead_edges`]); the extension
/// never removes an edge, so the result is a superset matching that is
/// maximal on the live-induced subgraph.
pub fn extend_matching(graph: &Graph, live_nodes: &[u64], mask: &mut [u64]) {
    let n = graph.node_count();
    let mut matched = vec![false; n];
    for (e, &(u, v)) in graph.edges().iter().enumerate() {
        if (mask[e >> 6] >> (e & 63)) & 1 == 1 {
            matched[u as usize] = true;
            matched[v as usize] = true;
        }
    }
    for u in graph.nodes() {
        if matched[u as usize] || !live(live_nodes, u) {
            continue;
        }
        for &e in graph.neighbor_edges(u) {
            let (a, b) = graph.edge(e);
            let v = if a == u { b } else { a };
            if !matched[v as usize] && live(live_nodes, v) {
                mask[(e >> 6) as usize] |= 1u64 << (e & 63);
                matched[u as usize] = true;
                matched[v as usize] = true;
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn hypercube_coloring_is_exact() {
        for dim in [1u32, 3, 5] {
            let g = generators::hypercube(dim);
            let c = edge_coloring(&g);
            assert_eq!(c.num_colors(), dim, "dim {dim}");
            assert!(c.is_proper(&g), "dim {dim}");
            // Each class is the perfect matching along one axis.
            for class in c.classes() {
                assert_eq!(class.len(), g.node_count() / 2);
            }
        }
    }

    #[test]
    fn even_torus_coloring_is_optimal() {
        let g = generators::torus2d(6, 8);
        let c = edge_coloring(&g);
        assert_eq!(c.num_colors(), 4, "even 2D torus: Δ = 4 colors");
        assert!(c.is_proper(&g));
    }

    #[test]
    fn odd_torus_coloring_is_proper() {
        for (rows, cols, expect) in [(5, 5, 6), (5, 6, 5), (3, 4, 5), (2, 7, 4)] {
            let g = generators::torus2d(rows, cols);
            let c = edge_coloring(&g);
            assert_eq!(c.num_colors(), expect, "{rows}x{cols}");
            assert!(c.is_proper(&g), "{rows}x{cols}");
        }
    }

    #[test]
    fn degenerate_torus_sides() {
        // Side 1 contributes no edges; side 2 contributes one color.
        let g = generators::torus(&[1, 4]);
        let c = edge_coloring(&g);
        assert_eq!(c.num_colors(), 2);
        assert!(c.is_proper(&g));
        let g = generators::torus(&[2, 2]);
        let c = edge_coloring(&g);
        assert!(c.is_proper(&g));
    }

    #[test]
    fn cycle_and_path_colorings() {
        let even = generators::cycle(8);
        let c = edge_coloring(&even);
        assert_eq!(c.num_colors(), 2);
        assert!(c.is_proper(&even));
        let odd = generators::cycle(9);
        let c = edge_coloring(&odd);
        assert_eq!(c.num_colors(), 3);
        assert!(c.is_proper(&odd));
        let p = generators::path(7);
        let c = edge_coloring(&p);
        assert_eq!(c.num_colors(), 2);
        assert!(c.is_proper(&p));
        let single = generators::path(2);
        assert_eq!(edge_coloring(&single).num_colors(), 1);
    }

    #[test]
    fn greedy_is_proper_and_bounded() {
        for (name, g) in [
            ("star", generators::star(9)),
            ("complete", generators::complete(7)),
            ("cm", generators::random_graph_cm(40, 3).unwrap()),
            ("er", generators::erdos_renyi(30, 0.3, 5)),
        ] {
            let c = greedy_edge_coloring(&g);
            assert!(c.is_proper(&g), "{name}");
            assert!(
                (c.num_colors() as usize) < 2 * g.max_degree(),
                "{name}: {} colors for Δ = {}",
                c.num_colors(),
                g.max_degree()
            );
        }
    }

    #[test]
    fn edgeless_graph_has_empty_coloring() {
        let g = generators::path(1);
        let c = edge_coloring(&g);
        assert_eq!(c.num_colors(), 0);
        assert!(c.colors().is_empty());
        assert!(maximal_matchings(&g, &c).is_empty());
    }

    #[test]
    fn classes_partition_the_edges() {
        let g = generators::torus2d(4, 6);
        let c = edge_coloring(&g);
        let total: usize = c.classes().iter().map(Vec::len).sum();
        assert_eq!(total, g.edge_count());
        for (color, class) in c.classes().into_iter().enumerate() {
            assert!(is_matching(&g, &class), "class {color}");
            for &e in &class {
                assert_eq!(c.color(e), color as u32);
            }
        }
    }

    #[test]
    fn maximal_matchings_are_maximal_and_cover() {
        for g in [
            generators::torus2d(5, 5),
            generators::hypercube(4),
            generators::random_graph_cm(30, 7).unwrap(),
            generators::star(6),
        ] {
            let c = edge_coloring(&g);
            let family = maximal_matchings(&g, &c);
            assert_eq!(family.len(), c.num_colors() as usize);
            let mut covered = vec![false; g.edge_count()];
            for (i, matching) in family.iter().enumerate() {
                assert!(is_maximal_matching(&g, matching), "matching {i} of {g:?}");
                for &e in matching {
                    covered[e as usize] = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "family covers every edge");
        }
    }

    #[test]
    fn coloring_is_deterministic() {
        let g = generators::random_graph_cm(50, 11).unwrap();
        assert_eq!(edge_coloring(&g), edge_coloring(&g));
        let c = edge_coloring(&g);
        assert_eq!(maximal_matchings(&g, &c), maximal_matchings(&g, &c));
    }

    fn edge_mask(g: &Graph, edges: &[EdgeId]) -> Vec<u64> {
        let mut mask = vec![0u64; g.edge_count().div_ceil(64).max(1)];
        for &e in edges {
            mask[(e >> 6) as usize] |= 1u64 << (e & 63);
        }
        mask
    }

    fn node_mask(n: usize, dead: &[NodeId]) -> Vec<u64> {
        let mut live = vec![u64::MAX; n.div_ceil(64).max(1)];
        for &v in dead {
            live[(v >> 6) as usize] &= !(1u64 << (v & 63));
        }
        live
    }

    fn mask_edges(mask: &[u64], m: usize) -> Vec<EdgeId> {
        (0..m)
            .filter(|&e| (mask[e >> 6] >> (e & 63)) & 1 == 1)
            .map(|e| e as EdgeId)
            .collect()
    }

    #[test]
    fn mask_dead_edges_removes_exactly_dead_incidences() {
        let g = generators::torus2d(4, 4);
        let all: Vec<EdgeId> = (0..g.edge_count() as EdgeId).collect();
        let mut mask = edge_mask(&g, &all);
        let live = node_mask(g.node_count(), &[3, 7]);
        mask_dead_edges(&g, &live, &mut mask);
        for (e, &(u, v)) in g.edges().iter().enumerate() {
            let kept = (mask[e >> 6] >> (e & 63)) & 1 == 1;
            let touches_dead = u == 3 || v == 3 || u == 7 || v == 7;
            assert_eq!(kept, !touches_dead, "edge {e} ({u},{v})");
        }
        // All-live is the identity.
        let mut mask = edge_mask(&g, &all);
        mask_dead_edges(&g, &node_mask(g.node_count(), &[]), &mut mask);
        assert_eq!(mask_edges(&mask, g.edge_count()), all);
    }

    #[test]
    fn repair_recovers_freed_pairs() {
        // Cycle 0-1-2-3: matching {(0,1), (2,3)}. Killing 1 and 2 frees
        // 0 and 3, and the wrap edge (3,0) is the only live re-cover.
        let g = generators::cycle(4);
        let base: Vec<EdgeId> = g
            .edges()
            .iter()
            .enumerate()
            .filter(|&(_, &(u, v))| (u, v) == (0, 1) || (u, v) == (2, 3))
            .map(|(e, _)| e as EdgeId)
            .collect();
        assert_eq!(base.len(), 2);
        let mut mask = edge_mask(&g, &base);
        repair_matching(&g, &node_mask(4, &[1, 2]), &mut mask);
        let repaired = mask_edges(&mask, g.edge_count());
        assert!(is_matching(&g, &repaired));
        assert_eq!(repaired.len(), 1);
        let (u, v) = g.edge(repaired[0]);
        assert_eq!((u.min(v), u.max(v)), (0, 3), "wrap edge re-covers 0 and 3");
    }

    /// Strategy for the equivalence proptests: a graph, plus a sequence
    /// of live-node sets (each an arbitrary subset of the nodes) modeling
    /// stepwise churn.
    fn churn_history() -> impl proptest::Strategy<Value = (Graph, Vec<Vec<bool>>)> {
        use proptest::collection::vec as pvec;
        use proptest::prelude::*;
        (8usize..40, any::<u64>()).prop_flat_map(|(n, seed)| {
            let g = match seed % 3 {
                0 => generators::cycle(n),
                1 => generators::torus2d(3, n / 3 + 2),
                _ => generators::random_graph_cm(n, 4).unwrap(),
            };
            let n = g.node_count();
            (Just(g), pvec(pvec(any::<bool>(), n), 1..5))
        })
    }

    fn bool_mask(alive: &[bool]) -> Vec<u64> {
        let mut words = vec![0u64; alive.len().div_ceil(64).max(1)];
        for (v, &a) in alive.iter().enumerate() {
            if a {
                words[v >> 6] |= 1u64 << (v & 63);
            }
        }
        words
    }

    proptest::proptest! {
        /// Repair-vs-rebuild equivalence: stepping a churn history the way
        /// the simulator does — re-deriving each epoch's masks *from the
        /// base family* — lands on exactly the masks a single one-shot
        /// repair with the final live set produces, for every class of the
        /// coloring. Checkpoint restore exploits this to rematerialize
        /// repaired families from (base, current live set) alone. The
        /// result is also a fixed point of repair, a matching maximal on
        /// the live subgraph, and never touches an inactive node.
        #[test]
        fn per_epoch_repair_equals_one_shot_rebuild((g, history) in churn_history()) {
            let coloring = edge_coloring(&g);
            let final_live = bool_mask(history.last().unwrap());
            for base in maximal_matchings(&g, &coloring) {
                // Per-epoch: clone the base family, repair with that epoch's
                // live set (the simulator's loop); keep the last epoch's mask.
                let mut stepped = Vec::new();
                for alive in &history {
                    stepped = edge_mask(&g, &base);
                    repair_matching(&g, &bool_mask(alive), &mut stepped);
                }
                // One-shot rebuild from the pristine base, final live set.
                let mut rebuilt = edge_mask(&g, &base);
                repair_matching(&g, &final_live, &mut rebuilt);
                proptest::prop_assert_eq!(&stepped, &rebuilt);
                // Fixed point: repairing a repaired mask changes nothing.
                let mut again = rebuilt.clone();
                repair_matching(&g, &final_live, &mut again);
                proptest::prop_assert_eq!(&again, &rebuilt);
                // A matching, maximal on the live subgraph, active-only.
                let repaired = mask_edges(&rebuilt, g.edge_count());
                proptest::prop_assert!(is_matching(&g, &repaired));
                let mut matched = vec![false; g.node_count()];
                for &e in &repaired {
                    let (u, v) = g.edge(e);
                    proptest::prop_assert!(live(&final_live, u) && live(&final_live, v));
                    matched[u as usize] = true;
                    matched[v as usize] = true;
                }
                for (e, &(u, v)) in g.edges().iter().enumerate() {
                    let extendable = live(&final_live, u)
                        && live(&final_live, v)
                        && !matched[u as usize]
                        && !matched[v as usize];
                    proptest::prop_assert!(!extendable, "edge {} left addable", e);
                }
            }
        }

        /// [`extend_matching`] only ever adds edges, keeps the matching
        /// property, and covers every node that can be covered — the
        /// join-side guarantee for (re)activations.
        #[test]
        fn extension_is_monotone_and_maximal((g, history) in churn_history()) {
            let alive = bool_mask(history.last().unwrap());
            // Start from the empty matching: extension alone must reach a
            // maximal matching of the live subgraph.
            let mut mask = vec![0u64; g.edge_count().div_ceil(64).max(1)];
            extend_matching(&g, &alive, &mut mask);
            let chosen = mask_edges(&mask, g.edge_count());
            proptest::prop_assert!(is_matching(&g, &chosen));
            let before = chosen.len();
            // Idempotent: a second extension adds nothing.
            extend_matching(&g, &alive, &mut mask);
            proptest::prop_assert_eq!(mask_edges(&mask, g.edge_count()).len(), before);
        }
    }

    #[test]
    fn repaired_masks_stay_matchings_and_never_touch_dead_nodes() {
        for g in [
            generators::torus2d(6, 6),
            generators::hypercube(4),
            generators::random_graph_cm(40, 5).unwrap(),
        ] {
            let coloring = edge_coloring(&g);
            let live = node_mask(g.node_count(), &[0, 5, 9, 13, 21]);
            for family in maximal_matchings(&g, &coloring) {
                let mut mask = edge_mask(&g, &family);
                let mut again = mask.clone();
                repair_matching(&g, &live, &mut mask);
                repair_matching(&g, &live, &mut again);
                assert_eq!(mask, again, "repair is deterministic");
                let repaired = mask_edges(&mask, g.edge_count());
                assert!(is_matching(&g, &repaired));
                for &e in &repaired {
                    let (u, v) = g.edge(e);
                    for w in [u, v] {
                        assert!(
                            (live[(w >> 6) as usize] >> (w & 63)) & 1 == 1,
                            "dead node {w} matched by edge {e}"
                        );
                    }
                }
            }
        }
    }
}
