//! Disjoint-set forest with union by rank and path halving.

/// A union-find (disjoint-set) structure over `0..n`.
///
/// Used by the random-geometric-graph generator to connect stray components
/// to the giant component, mirroring the paper's construction
/// ("remaining small isolated components were connected to the closest
/// neighbor in the largest component").
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Representative of the set containing `x`, with path halving.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.components -= 1;
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets remaining.
    pub fn component_count(&self) -> usize {
        self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_unions() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert_eq!(uf.component_count(), 3);
        assert!(!uf.union(1, 0));
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
        assert!(uf.union(1, 3));
        assert!(uf.connected(0, 2));
        assert_eq!(uf.component_count(), 2);
    }

    #[test]
    fn transitive_connectivity_chain() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.component_count(), 1);
        assert!(uf.connected(0, 99));
    }
}
