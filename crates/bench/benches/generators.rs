//! Criterion: graph-generator throughput at the scales the experiment
//! binaries use.

use criterion::{criterion_group, criterion_main, Criterion};

use sodiff_graph::generators;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);

    group.bench_function("torus2d_100x100", |b| {
        b.iter(|| generators::torus2d(100, 100))
    });
    group.bench_function("hypercube_14", |b| b.iter(|| generators::hypercube(14)));
    group.bench_function("random_regular_10k_d13", |b| {
        b.iter(|| generators::random_regular(10_000, 13, 1).unwrap())
    });
    group.bench_function("rgg_2000_paper_radius", |b| {
        b.iter(|| generators::rgg_paper(2_000, 1))
    });
    group.bench_function("erdos_renyi_5000_p001", |b| {
        b.iter(|| generators::erdos_renyi(5_000, 0.01, 1))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_generators
}
criterion_main!(benches);
