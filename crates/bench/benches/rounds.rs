//! Criterion: cost of one simulation round for each scheme × mode × graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sodiff_core::prelude::*;
use sodiff_graph::{generators, Graph, Speeds};
use sodiff_linalg::spectral;

fn graph_cases() -> Vec<(&'static str, Graph)> {
    vec![
        ("torus64", generators::torus2d(64, 64)),
        ("hypercube12", generators::hypercube(12)),
        ("cm4096", generators::random_graph_cm(4096, 1).unwrap()),
    ]
}

fn bench_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("round");
    for (gname, graph) in graph_cases() {
        let n = graph.node_count();
        let beta = spectral::analyze(&graph, &Speeds::uniform(n)).beta_opt();
        let cases: [(&str, SimulationConfig); 4] = [
            (
                "fos_discrete",
                SimulationConfig::discrete(Scheme::fos(), Rounding::randomized(1)),
            ),
            (
                "sos_discrete",
                SimulationConfig::discrete(Scheme::sos(beta), Rounding::randomized(1)),
            ),
            (
                "fos_continuous",
                SimulationConfig::continuous(Scheme::fos()),
            ),
            (
                "sos_continuous",
                SimulationConfig::continuous(Scheme::sos(beta)),
            ),
        ];
        for (cname, config) in cases {
            let mut sim = Simulator::new(&graph, config, InitialLoad::paper_default(n));
            // Warm the flow memory so SOS benches its steady-state path.
            sim.step();
            group.bench_function(BenchmarkId::new(cname, gname), |b| {
                b.iter(|| sim.step());
            });
        }
    }
    group.finish();
}

/// Sequential vs pooled executor cost on the same graph cases: the
/// `threads` dimension tracks what the persistent worker pool costs or
/// saves per round (bit-identical results by construction).
fn bench_step_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_threads");
    for (gname, graph) in graph_cases() {
        let n = graph.node_count();
        let beta = spectral::analyze(&graph, &Speeds::uniform(n)).beta_opt();
        for threads in [1usize, 2, 4] {
            let cases: [(&str, SimulationConfig); 2] = [
                (
                    "sos_discrete_nearest",
                    SimulationConfig::discrete(Scheme::sos(beta), Rounding::nearest()),
                ),
                (
                    "sos_discrete_randomized",
                    SimulationConfig::discrete(Scheme::sos(beta), Rounding::randomized(1)),
                ),
            ];
            for (cname, config) in cases {
                let mut sim = Simulator::new(
                    &graph,
                    config.with_threads(threads),
                    InitialLoad::paper_default(n),
                );
                sim.step();
                group.bench_function(
                    BenchmarkId::new(format!("{cname}_t{threads}"), gname),
                    |b| {
                        b.iter(|| sim.step());
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_step, bench_step_threads
}
criterion_main!(benches);
