//! Criterion: cost of one simulation round for each scheme × mode × graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sodiff_core::prelude::*;
use sodiff_graph::{generators, Graph, Speeds};
use sodiff_linalg::spectral;

fn graph_cases() -> Vec<(&'static str, Graph)> {
    vec![
        ("torus64", generators::torus2d(64, 64)),
        ("hypercube12", generators::hypercube(12)),
        ("cm4096", generators::random_graph_cm(4096, 1).unwrap()),
    ]
}

fn bench_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("round");
    for (gname, graph) in graph_cases() {
        let n = graph.node_count();
        let beta = spectral::analyze(&graph, &Speeds::uniform(n)).beta_opt();
        let cases: [(&str, Scheme, bool); 4] = [
            ("fos_discrete", Scheme::fos(), true),
            ("sos_discrete", Scheme::sos(beta), true),
            ("fos_continuous", Scheme::fos(), false),
            ("sos_continuous", Scheme::sos(beta), false),
        ];
        for (cname, scheme, discrete) in cases {
            let builder = Experiment::on(&graph);
            let builder = if discrete {
                builder.discrete(Rounding::randomized(1))
            } else {
                builder.continuous()
            };
            let mut sim = builder
                .scheme(scheme)
                .init(InitialLoad::paper_default(n))
                .build()
                .expect("valid experiment")
                .simulator();
            // Warm the flow memory so SOS benches its steady-state path.
            sim.step();
            group.bench_function(BenchmarkId::new(cname, gname), |b| {
                b.iter(|| sim.step());
            });
        }
    }
    group.finish();
}

/// Sequential vs pooled executor cost on the same graph cases: the
/// `threads` dimension tracks what the persistent worker pool costs or
/// saves per round (bit-identical results by construction).
fn bench_step_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_threads");
    for (gname, graph) in graph_cases() {
        let n = graph.node_count();
        let beta = spectral::analyze(&graph, &Speeds::uniform(n)).beta_opt();
        for threads in [1usize, 2, 4] {
            let cases: [(&str, Rounding); 2] = [
                ("sos_discrete_nearest", Rounding::nearest()),
                ("sos_discrete_randomized", Rounding::randomized(1)),
            ];
            for (cname, rounding) in cases {
                let mut sim = Experiment::on(&graph)
                    .discrete(rounding)
                    .sos(beta)
                    .threads(threads)
                    .init(InitialLoad::paper_default(n))
                    .build()
                    .expect("valid experiment")
                    .simulator();
                sim.step();
                group.bench_function(
                    BenchmarkId::new(format!("{cname}_t{threads}"), gname),
                    |b| {
                        b.iter(|| sim.step());
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_step, bench_step_threads
}
criterion_main!(benches);
