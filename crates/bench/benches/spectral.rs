//! Criterion: spectral-solver costs — analytic closed forms vs dense
//! Jacobi vs shifted power iteration.

use criterion::{criterion_group, criterion_main, Criterion};

use sodiff_graph::{generators, Speeds};
use sodiff_linalg::power::PowerOptions;
use sodiff_linalg::spectral;

fn bench_spectral(c: &mut Criterion) {
    let mut group = c.benchmark_group("spectral");

    group.bench_function("analytic_torus_1000", |b| {
        b.iter(|| spectral::torus_spectrum(&[1000, 1000]))
    });

    let small = generators::torus2d(10, 10);
    let small_speeds = Speeds::uniform(100);
    group.bench_function("dense_jacobi_torus10", |b| {
        b.iter(|| spectral::dense_spectrum(&small, &small_speeds))
    });

    let medium = generators::torus2d(64, 64);
    let medium_speeds = Speeds::uniform(64 * 64);
    let opts = PowerOptions {
        max_iterations: 2_000,
        tolerance: 1e-8,
        seed: 1,
    };
    group.sample_size(10);
    group.bench_function("power_torus64", |b| {
        b.iter(|| spectral::power_spectrum(&medium, &medium_speeds, opts))
    });

    let hetero = Speeds::linear_ramp(64 * 64, 8.0);
    group.bench_function("power_torus64_hetero", |b| {
        b.iter(|| spectral::power_spectrum(&medium, &hetero, opts))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_spectral
}
criterion_main!(benches);
