//! Criterion: per-round random-matching generation in isolation — the
//! `O(m)` counting-scatter bucket pass against the `O(m log m)`
//! sort-based reference it replaced — across torus, hypercube, and
//! random-regular graphs, so the `matching:random` scheme's dominant
//! per-round overhead is attributable separately from its kernel work
//! (mirroring what `framework_phases.rs` does for the randomized
//! rounding pipeline).
//!
//! Uses `sodiff_core::{kernel, matchgen}`, the `#[doc(hidden)]` hot-path
//! surface exported for exactly this purpose.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use sodiff_core::kernel::KernelTables;
use sodiff_core::matchgen::{self, MatchScratch};
use sodiff_graph::{generators, Graph, Speeds};

const SEED: u64 = 42;

fn graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("torus128x128", generators::torus2d(128, 128)),
        ("hypercube12", generators::hypercube(12)),
        (
            "random_regular_8192_d6",
            generators::random_regular(8192, 6, 7).expect("valid regular graph"),
        ),
    ]
}

fn bench_matching_gen(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching_gen");
    for (name, graph) in graphs() {
        let n = graph.node_count();
        let tables = KernelTables::new(&graph, &Speeds::uniform(n), false, 0.0);
        let uv = matchgen::edge_pairs(&tables);
        group.bench_function(BenchmarkId::new("bucketed", name), |b| {
            let mut mg = MatchScratch::default();
            let mut round = 0u64;
            b.iter(|| {
                round += 1;
                matchgen::fill_random_matching(SEED, round, &tables, &uv, &mut mg);
                black_box(mg.mask.last().copied())
            });
        });
        group.bench_function(BenchmarkId::new("sorted", name), |b| {
            let mut mg = MatchScratch::default();
            let mut round = 0u64;
            b.iter(|| {
                round += 1;
                matchgen::fill_random_matching_sorted(SEED, round, &tables, &uv, &mut mg);
                black_box(mg.mask.last().copied())
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_matching_gen
}
criterion_main!(benches);
