//! Criterion: per-round cost of the rounding schemes (measured through
//! full discrete SOS steps on a fixed torus, so the differences between
//! bars isolate the rounding pass).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sodiff_core::prelude::*;
use sodiff_graph::{generators, Speeds};
use sodiff_linalg::spectral;

fn bench_rounding(c: &mut Criterion) {
    let graph = generators::torus2d(64, 64);
    let n = graph.node_count();
    let beta = spectral::analyze(&graph, &Speeds::uniform(n)).beta_opt();
    let mut group = c.benchmark_group("rounding_step");
    for (name, rounding) in [
        ("randomized_framework", Rounding::randomized(1)),
        ("round_down", Rounding::round_down()),
        ("nearest", Rounding::nearest()),
        ("unbiased_edge", Rounding::unbiased_edge(1)),
    ] {
        let mut sim = Experiment::on(&graph)
            .discrete(rounding)
            .sos(beta)
            .init(InitialLoad::paper_default(n))
            .build()
            .expect("valid experiment")
            .simulator();
        sim.step();
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| sim.step());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_rounding
}
criterion_main!(benches);
