//! Criterion: the randomized framework's three pipeline phases in
//! isolation (plus the bulk RNG sweep and the apply pass), so a perf
//! regression is attributable to one phase instead of one lump number.
//!
//! Uses `sodiff_core::kernel`, the `#[doc(hidden)]` hot-path surface
//! exported for exactly this purpose.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use sodiff_core::kernel::{self, FwScratch, KernelTables};
use sodiff_core::rng;
use sodiff_graph::{generators, Speeds};

const SIDE: usize = 256;
const SEED: u64 = 42;

struct Fixture {
    tables: KernelTables,
    loads: Vec<f64>,
    arc_frac: Vec<f64>,
    flows: Vec<i64>,
    prev: Vec<f64>,
}

/// A 256×256 torus mid-simulation: loads and flow memory in a plausible
/// post-warmup state so the rounding phase sees realistic fractional
/// parts. One scatter pass is run here so `arc_frac` is populated up
/// front — each benchmark below is self-contained and order-independent.
fn fixture() -> Fixture {
    let graph = generators::torus2d(SIDE, SIDE);
    let n = graph.node_count();
    let speeds = Speeds::uniform(n);
    let tables = KernelTables::new(&graph, &speeds, true, 0.0);
    let m = tables.m;
    let loads: Vec<f64> = (0..n).map(|i| 1000.0 + ((i * 37) % 101) as f64).collect();
    let mut prev: Vec<f64> = (0..m)
        .map(|e| ((e * 31 % 17) as f64 - 8.0) * 0.37)
        .collect();
    let mut arc_frac = vec![0.0; graph.arc_count()];
    let mut flows = vec![0; m];
    kernel::edge_pass_scatter(
        &tables,
        0..m,
        0.4,
        1.6,
        sodiff_core::FlowMemory::Rounded,
        |i| loads[i],
        &kernel::cells_f64(&mut arc_frac),
        &kernel::cells_i64(&mut flows),
        &kernel::cells_f64(&mut prev),
    );
    Fixture {
        tables,
        loads,
        arc_frac,
        flows,
        prev,
    }
}

fn bench_phases(c: &mut Criterion) {
    let mut group = c.benchmark_group("framework_phase");
    let Fixture {
        tables,
        loads,
        mut arc_frac,
        mut flows,
        mut prev,
    } = fixture();
    let (n, m) = (tables.n, tables.m);

    group.bench_function(BenchmarkId::from_parameter("bulk_rng_sweep"), |b| {
        let mut states = vec![0u64; n];
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            rng::fill_node_states(rng::round_key(SEED, round), 0, &mut states);
            black_box(states.last().copied())
        });
    });

    group.bench_function(BenchmarkId::from_parameter("edge_pass_scatter"), |b| {
        b.iter(|| {
            kernel::edge_pass_scatter(
                &tables,
                0..m,
                0.4,
                1.6,
                sodiff_core::FlowMemory::Rounded,
                |i| loads[i],
                &kernel::cells_f64(&mut arc_frac),
                &kernel::cells_i64(&mut flows),
                &kernel::cells_f64(&mut prev),
            );
        });
    });

    group.bench_function(BenchmarkId::from_parameter("arc_round_streamed"), |b| {
        let mut scratch = FwScratch::new();
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            kernel::arc_round_streamed(
                &tables,
                0..n,
                SEED,
                round,
                &kernel::cells_f64(&mut arc_frac),
                &kernel::cells_i64(&mut flows),
                &mut scratch,
            );
        });
    });

    group.bench_function(BenchmarkId::from_parameter("prev_from_flows"), |b| {
        b.iter(|| {
            kernel::prev_from_flows(
                0..m,
                &kernel::cells_i64(&mut flows),
                &kernel::cells_f64(&mut prev),
            );
        });
    });

    group.bench_function(BenchmarkId::from_parameter("apply_discrete"), |b| {
        let mut int_loads: Vec<i64> = (0..n).map(|i| 1000 + ((i * 37) % 101) as i64).collect();
        let mut block_sums = vec![0.0f64; kernel::dev_blocks(n)];
        b.iter(|| {
            black_box(kernel::apply_discrete(
                &tables,
                0..n,
                |e| flows[e],
                &kernel::cells_i64(&mut int_loads),
                &kernel::cells_f64(&mut block_sums),
            ))
        });
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_phases
}
criterion_main!(benches);
