//! Ablation: thread scaling of the round executor (the paper's simulator
//! used OpenMP on a 4-core i7). Measures rounds/second of discrete SOS on
//! a large torus for increasing thread counts and verifies the runs are
//! bit-identical.

use std::time::Instant;

use sodiff_bench::ExpOpts;
use sodiff_core::prelude::*;
use sodiff_graph::generators;
use sodiff_linalg::spectral;

fn main() {
    let opts = ExpOpts::from_args();
    let side: usize = opts.scale(512, 1000);
    let rounds = opts.scale(60usize, 200);
    let graph = generators::torus2d(side, side);
    let n = graph.node_count();
    let beta = spectral::analyze(&graph, &Speeds::uniform(n)).beta_opt();
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(4);
    println!(
        "Thread scaling: torus {side}x{side} ({} edges), {rounds} rounds, {cores} cores",
        graph.edge_count()
    );
    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>14}",
        "threads", "seconds", "rounds/s", "speedup", "loads checksum"
    );

    let mut baseline = None;
    let mut reference: Option<Vec<i64>> = None;
    let mut rows = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        if threads > 2 * cores {
            break;
        }
        let mut sim = Experiment::on(&graph)
            .discrete(Rounding::randomized(opts.seed))
            .sos(beta)
            .threads(threads)
            .init(InitialLoad::paper_default(n))
            .build()
            .expect("valid experiment")
            .simulator();
        let start = Instant::now();
        sim.run_until(StopCondition::MaxRounds(rounds));
        let secs = start.elapsed().as_secs_f64();
        let rps = rounds as f64 / secs;
        let speedup = baseline.map(|b: f64| secs_ratio(b, secs)).unwrap_or(1.0);
        if baseline.is_none() {
            baseline = Some(secs);
        }
        let loads = sim.loads_i64().expect("discrete").to_vec();
        let checksum: i64 = loads
            .iter()
            .enumerate()
            .map(|(i, &x)| x.wrapping_mul(i as i64 | 1))
            .fold(0i64, |a, b| a.wrapping_add(b));
        match &reference {
            None => reference = Some(loads),
            Some(r) => assert_eq!(r, &loads, "parallel run diverged at {threads} threads"),
        }
        println!("{threads:>8} {secs:>12.3} {rps:>12.1} {speedup:>10.2} {checksum:>14}");
        rows.push(format!("{threads},{secs},{rps},{speedup}"));
    }
    sodiff_bench::write_table(
        &opts.path("ablation_threads"),
        "threads,seconds,rounds_per_sec,speedup",
        &rows,
    );
    println!("\nwrote {}", opts.path("ablation_threads").display());
    println!("all thread counts produced bit-identical load vectors.");
}

fn secs_ratio(baseline: f64, now: f64) -> f64 {
    baseline / now
}
