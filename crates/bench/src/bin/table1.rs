//! Table I: graph classes, sizes, and the optimal SOS parameter β.
//!
//! Analytic spectra (tori, hypercube) are evaluated at the exact paper
//! sizes regardless of `--full`; the two random graph classes default to
//! scaled sizes (the paper's 10⁶-node configuration-model graph needs
//! `--full` and some patience for the power iteration).

use sodiff_bench::{write_table, ExpOpts};
use sodiff_graph::{generators, Speeds};
use sodiff_linalg::power::PowerOptions;
use sodiff_linalg::spectral;

fn main() {
    let opts = ExpOpts::from_args();
    let mut rows = Vec::new();
    println!(
        "{:<28} {:>10} {:>14} {:>14} {:>14}",
        "graph", "n", "lambda", "beta_opt", "beta (paper)"
    );

    let mut emit = |name: &str, n: usize, lambda: f64, beta: f64, paper: Option<f64>| {
        let paper_str = paper
            .map(|p| format!("{p:.10}"))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<28} {:>10} {:>14.10} {:>14.10} {:>14}",
            name, n, lambda, beta, paper_str
        );
        rows.push(format!(
            "{name},{n},{lambda},{beta},{}",
            paper.unwrap_or(f64::NAN)
        ));
    };

    // Tori and hypercube: closed forms at paper scale.
    let s = spectral::torus_spectrum(&[1000, 1000]);
    emit(
        "torus 1000x1000",
        1_000_000,
        s.lambda,
        s.beta_opt(),
        Some(1.9920836447),
    );
    let s = spectral::torus_spectrum(&[100, 100]);
    emit(
        "torus 100x100",
        10_000,
        s.lambda,
        s.beta_opt(),
        Some(1.9235874877),
    );
    let s = spectral::hypercube_spectrum(20);
    emit(
        "hypercube 2^20",
        1 << 20,
        s.lambda,
        s.beta_opt(),
        Some(1.4026054847),
    );

    // Random graph (CM), d = floor(log2 n): power iteration.
    let n_cm = opts.scale(16_384, 1_000_000);
    let g = generators::random_graph_cm(n_cm, opts.seed).expect("valid CM parameters");
    let s = spectral::power_spectrum(
        &g,
        &Speeds::uniform(n_cm),
        PowerOptions {
            max_iterations: 5_000,
            tolerance: 1e-10,
            seed: opts.seed,
        },
    );
    let paper = if opts.full { Some(1.0651965147) } else { None };
    emit(
        &format!("random graph (CM) d={}", g.max_degree()),
        n_cm,
        s.lambda,
        s.beta_opt(),
        paper,
    );

    // Random geometric graph, r = 4 (log n)^(1/4).
    let n_rgg = opts.scale(2_000, 10_000);
    let g = generators::rgg_paper(n_rgg, opts.seed);
    let s = spectral::power_spectrum(
        &g,
        &Speeds::uniform(n_rgg),
        PowerOptions {
            max_iterations: 5_000,
            tolerance: 1e-10,
            seed: opts.seed,
        },
    );
    let paper = if opts.full { Some(1.9554636334) } else { None };
    emit(
        "random geometric graph",
        n_rgg,
        s.lambda,
        s.beta_opt(),
        paper,
    );

    write_table(
        &opts.path("table1"),
        "graph,n,lambda,beta_opt,beta_paper",
        &rows,
    );
    println!("\nwrote {}", opts.path("table1").display());
    println!("note: paper beta values are reproduced to ~1e-7 for the");
    println!("closed-form rows; random-graph rows depend on the instance");
    println!("(seed) and match the paper's order of magnitude.");
}
