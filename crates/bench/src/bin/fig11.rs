//! Figure 11: smoothing effect of the FOS phase, rendered with absolute
//! shading (white = at the average, black = ≥10 tokens off). Three frames:
//! after 3000 SOS steps, after +100 FOS steps, after +1000 FOS steps
//! (checkpoints scaled with the torus side).

use sodiff_bench::ExpOpts;
use sodiff_core::prelude::*;
use sodiff_graph::generators;
use sodiff_linalg::spectral;
use sodiff_viz::{render_torus, Shading};

fn main() {
    let opts = ExpOpts::from_args();
    let side: usize = opts.scale(256, 1000);
    let graph = generators::torus2d(side, side);
    let n = graph.node_count();
    let beta = spectral::analyze(&graph, &Speeds::uniform(n)).beta_opt();
    let scale = side as f64 / 1000.0;
    let sos_steps = (3000.0 * scale) as u64;
    let fos_a = (100.0 * scale).max(10.0) as u64;
    let fos_b = (1000.0 * scale) as u64;
    println!("Figure 11: torus {side}x{side}; {sos_steps} SOS steps, then +{fos_a}/+{fos_b} FOS");

    let mut sim = Experiment::on(&graph)
        .discrete(Rounding::randomized(opts.seed))
        .sos(beta)
        .init(InitialLoad::paper_default(n))
        .build()
        .expect("valid experiment")
        .simulator();

    let shading = Shading::Absolute { threshold: 10.0 };
    let mut loads = vec![0.0f64; n];
    let render = |sim: &Simulator<'_>, loads: &mut [f64], tag: &str| {
        for (i, l) in loads.iter_mut().enumerate() {
            *l = sim.load_of(i);
        }
        let img = render_torus(side, side, loads, shading);
        let path = opts.out_dir.join(format!("fig11_{tag}.pgm"));
        img.save_pgm(&path).expect("write frame");
        let m = sim.metrics();
        println!(
            "{tag:>16}: max-avg {:>8.1}, local diff {:>8.1} -> {}",
            m.max_minus_avg,
            m.max_local_diff,
            path.display()
        );
    };

    for _ in 0..sos_steps {
        sim.step();
    }
    render(&sim, &mut loads, "after_sos");
    sim.switch_scheme(Scheme::fos());
    for _ in 0..fos_a {
        sim.step();
    }
    render(&sim, &mut loads, "fos_plus_100");
    for _ in 0..(fos_b - fos_a) {
        sim.step();
    }
    render(&sim, &mut loads, "fos_plus_1000");

    println!();
    println!("expected (paper): after SOS no pixel exceeds the average by");
    println!("more than 10 tokens but the image is noisy; the FOS steps");
    println!("smooth it out, dropping the maximum from ~9 to ~7 (at side");
    println!("1000; small tori go lower).");
}
