//! Ablation: rounding schemes. Compares the paper's randomized framework
//! against round-down, round-to-nearest, and per-edge unbiased rounding on
//! a torus under SOS: remaining imbalance, deviation from the continuous
//! twin, and minimum transient load.

use sodiff_bench::ExpOpts;
use sodiff_core::prelude::*;
use sodiff_graph::generators;
use sodiff_linalg::spectral;

fn main() {
    let opts = ExpOpts::from_args();
    let side: usize = opts.scale(64, 256);
    let rounds = 20 * side;
    let graph = generators::torus2d(side, side);
    let n = graph.node_count();
    let beta = spectral::analyze(&graph, &Speeds::uniform(n)).beta_opt();
    println!("Ablation: rounding schemes on torus {side}x{side}, SOS, {rounds} rounds");
    println!(
        "{:<22} {:>12} {:>14} {:>14} {:>16}",
        "rounding", "max - avg", "max deviation", "final dev", "min transient"
    );

    let mut rows = Vec::new();
    for (name, rounding) in [
        ("randomized framework", Rounding::randomized(opts.seed)),
        ("round down", Rounding::round_down()),
        ("nearest", Rounding::nearest()),
        ("unbiased per edge", Rounding::unbiased_edge(opts.seed)),
    ] {
        let exp = Experiment::on(&graph)
            .discrete(rounding)
            .sos(beta)
            .init(InitialLoad::paper_default(n))
            .build()
            .expect("valid experiment");
        let series = exp.coupled_deviation(rounds).expect("discrete experiment");
        let mut sim = exp.simulator();
        sim.run_until(StopCondition::MaxRounds(rounds));
        let m = sim.metrics();
        println!(
            "{:<22} {:>12.1} {:>14.1} {:>14.1} {:>16.1}",
            name,
            m.max_minus_avg,
            series.max(),
            series.last(),
            sim.min_transient_load()
        );
        rows.push(format!(
            "{name},{},{},{},{}",
            m.max_minus_avg,
            series.max(),
            series.last(),
            sim.min_transient_load()
        ));
    }
    sodiff_bench::write_table(
        &opts.path("ablation_rounding"),
        "rounding,max_minus_avg,max_deviation,final_deviation,min_transient",
        &rows,
    );
    println!("\nwrote {}", opts.path("ablation_rounding").display());
    println!("expected: the framework and per-edge unbiased rounding track the");
    println!("continuous process closely; round-down accumulates bias.");
}
