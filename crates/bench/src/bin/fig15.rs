//! Figure 15: the 100×100 torus with everything overlaid — the standard
//! metric series of an SOS run with a switch to FOS at round 500, plus the
//! eigen-coefficient impact columns (max |aᵢ|, leading rank) per round.

use std::io::Write;

use sodiff_bench::ExpOpts;
use sodiff_core::prelude::*;
use sodiff_graph::generators;
use sodiff_linalg::fourier::TorusModes;
use sodiff_linalg::spectral;

fn main() {
    let opts = ExpOpts::from_args();
    let side: usize = 100; // paper scale
    let rounds = 1000u64;
    let switch = 500u64;
    let graph = generators::torus2d(side, side);
    let n = graph.node_count();
    let beta = spectral::analyze(&graph, &Speeds::uniform(n)).beta_opt();
    println!(
        "Figure 15: torus {side}x{side}, SOS with FOS from round {switch}, coefficients overlay"
    );

    let modes = TorusModes::new(side, side);
    let mut sim = Experiment::on(&graph)
        .discrete(Rounding::randomized(opts.seed))
        .sos(beta)
        .init(InitialLoad::paper_default(n))
        .build()
        .expect("valid experiment")
        .simulator();

    let path = opts.path("fig15_overlay");
    let mut w = std::io::BufWriter::new(std::fs::File::create(&path).expect("create csv"));
    writeln!(
        w,
        "round,max_minus_avg,max_local_diff,potential_over_n,max_amplitude,leading_rank"
    )
    .expect("header");

    let mut loads = vec![0.0f64; n];
    for round in 1..=rounds {
        if round == switch + 1 {
            sim.switch_scheme(Scheme::fos());
        }
        sim.step();
        for (i, l) in loads.iter_mut().enumerate() {
            *l = sim.load_of(i);
        }
        let coeffs = modes.coefficients(&loads);
        let leading = TorusModes::leading(&coeffs);
        let m = sim.metrics();
        writeln!(
            w,
            "{round},{},{},{},{},{}",
            m.max_minus_avg,
            m.max_local_diff,
            m.potential_over_n,
            leading.map(|l| l.amplitude).unwrap_or(0.0),
            leading.map(|l| l.rank).unwrap_or(0),
        )
        .expect("row");
    }
    drop(w);
    println!("wrote {}", opts.path("fig15_overlay").display());
    println!();
    println!("expected shape (paper): the leading coefficient is the second");
    println!("eigenvalue group (the paper's -a4) from ~round 100 to ~700;");
    println!("after ~700 rounds no eigenvector dominates, and the switch at");
    println!("500 pulls the metrics below the pure-SOS plateau.");
}
