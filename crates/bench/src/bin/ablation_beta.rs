//! Ablation: sensitivity of SOS to the relaxation parameter β. Sweeps β
//! around β_opt on a torus and reports rounds-to-balance — the paper's
//! convergence theory says β_opt is optimal and that β ≥ 2 diverges.

use sodiff_bench::ExpOpts;
use sodiff_core::prelude::*;
use sodiff_graph::generators;
use sodiff_linalg::spectral;

fn main() {
    let opts = ExpOpts::from_args();
    let side: usize = opts.scale(48, 128);
    let graph = generators::torus2d(side, side);
    let n = graph.node_count();
    let beta_opt = spectral::analyze(&graph, &Speeds::uniform(n)).beta_opt();
    println!("Ablation: beta sweep on torus {side}x{side}, beta_opt = {beta_opt:.6}");
    println!("{:<24} {:>10} {:>18}", "beta", "rounds", "final max - avg");

    let mut rows = Vec::new();
    let candidates = [
        ("1.0 (=FOS)", 1.0),
        ("0.90 beta_opt", 0.90 * beta_opt),
        ("0.97 beta_opt", 0.97 * beta_opt),
        ("beta_opt", beta_opt),
        ("midpoint to 2", (beta_opt + 2.0) / 2.0),
        ("1.999", 1.999),
    ];
    for (label, beta) in candidates {
        let report = Experiment::on(&graph)
            .discrete(Rounding::randomized(opts.seed))
            .sos(beta.min(1.999))
            .init(InitialLoad::paper_default(n))
            .stop(StopCondition::BalancedWithin {
                threshold: 20.0,
                max_rounds: 100 * side,
            })
            .build()
            .expect("valid experiment")
            .run();
        let rounds_str = if report.reason == StopReason::Threshold {
            report.rounds.to_string()
        } else {
            format!(">{}", report.rounds)
        };
        println!(
            "{label:<24} {rounds_str:>10} {:>18.1}",
            report.final_metrics.max_minus_avg
        );
        rows.push(format!(
            "{beta},{},{}",
            report.rounds, report.final_metrics.max_minus_avg
        ));
    }
    sodiff_bench::write_table(
        &opts.path("ablation_beta"),
        "beta,rounds,final_max_minus_avg",
        &rows,
    );
    println!("\nwrote {}", opts.path("ablation_beta").display());
    println!("expected: a sharp optimum at beta_opt; below it convergence");
    println!("degrades towards FOS speed, above it oscillation slows it.");
}
