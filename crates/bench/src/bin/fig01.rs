//! Figure 1: SOS on a 2D torus — max−avg (blue), max local difference
//! (red), potential φ_t/n (yellow) — with FOS max−avg (green) as the
//! comparison. Paper: 1000×1000 torus, 5000 rounds; default here:
//! 256×256, rounds scaled proportionally.

use sodiff_bench::{save_recorder, stride_for, ExpOpts};
use sodiff_core::prelude::*;
use sodiff_graph::generators;
use sodiff_linalg::spectral;

fn main() {
    let opts = ExpOpts::from_args();
    let side: usize = opts.scale(256, 1000);
    let rounds = 5 * side as u64;
    let graph = generators::torus2d(side, side);
    let n = graph.node_count();
    let beta = spectral::analyze(&graph, &Speeds::uniform(n)).beta_opt();
    println!("Figure 1: torus {side}x{side}, beta = {beta:.8}, {rounds} rounds");

    let stride = stride_for(rounds, 1000);
    for (name, scheme) in [
        ("fig01_sos", Scheme::sos(beta)),
        ("fig01_fos", Scheme::fos()),
    ] {
        let exp = Experiment::on(&graph)
            .discrete(Rounding::randomized(opts.seed))
            .scheme(scheme)
            .init(InitialLoad::paper_default(n))
            .stop(StopCondition::MaxRounds(rounds as usize))
            .build()
            .expect("valid experiment");
        let mut rec = Recorder::every(stride);
        exp.run_with(&mut rec);
        save_recorder(&opts, name, &rec);
    }

    println!();
    println!("expected shape (paper): SOS potential decays exponentially and");
    println!("plateaus; max-avg shows discontinuities when the wavefronts");
    println!("collapse at the torus center (~every 1200-1300 steps at side");
    println!("1000, scaling with the side); FOS max-avg decays much slower.");
}
