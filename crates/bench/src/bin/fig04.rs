//! Figures 4 and 5: the SOS→FOS switch on a 2D torus. The paper switches
//! after 2500 and 3000 rounds on the 1000×1000 torus (≈2.5·side and
//! 3·side); both the hybrid series and the pure-SOS baseline are saved so
//! Figure 5's direct comparison falls out of the same data.

use sodiff_bench::{save_recorder, stride_for, ExpOpts};
use sodiff_core::prelude::*;
use sodiff_graph::generators;
use sodiff_linalg::spectral;

fn main() {
    let opts = ExpOpts::from_args();
    let side: usize = opts.scale(256, 1000);
    let graph = generators::torus2d(side, side);
    let n = graph.node_count();
    let beta = spectral::analyze(&graph, &Speeds::uniform(n)).beta_opt();
    let scale = side as f64 / 1000.0;
    let switches = [(2500.0 * scale) as u64, (3000.0 * scale) as u64];
    let horizon = (3500.0 * scale) as u64;
    println!(
        "Figures 4/5: torus {side}x{side}, switching to FOS at {switches:?}, horizon {horizon}"
    );

    let stride = stride_for(horizon, 1400);
    let experiment = |policy: Option<SwitchPolicy>| {
        let mut builder = Experiment::on(&graph)
            .discrete(Rounding::randomized(opts.seed))
            .sos(beta)
            .init(InitialLoad::paper_default(n))
            .stop(StopCondition::MaxRounds(horizon as usize));
        if let Some(policy) = policy {
            builder = builder.hybrid(policy);
        }
        builder.build().expect("valid experiment")
    };
    // Pure SOS baseline.
    {
        let mut rec = Recorder::every(stride);
        experiment(None).run_with(&mut rec);
        save_recorder(&opts, "fig04_sos_only", &rec);
    }
    // Hybrids.
    for switch in switches {
        let mut rec = Recorder::every(stride);
        let report = experiment(Some(SwitchPolicy::AtRound(switch))).run_with(&mut rec);
        save_recorder(&opts, &format!("fig04_switch{switch}"), &rec);
        println!(
            "  switch at {switch}: fired at {:?}, final max-avg {:.1}, local diff {:.1}",
            report.switch_round,
            report.final_metrics.max_minus_avg,
            report.final_metrics.max_local_diff
        );
    }

    println!();
    println!("expected shape (paper): after the switch both the local and");
    println!("global differences drop sharply — max local diff converges to");
    println!("~4 and max-avg to ~7 (1000x1000; small tori go lower).");
}
