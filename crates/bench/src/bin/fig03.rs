//! Figure 3: SOS (blue) vs FOS (green) max−avg on a 2D torus; left plot
//! with discrete loads and randomized rounding, right plot the idealized
//! (continuous) schemes.

use sodiff_bench::{save_recorder, stride_for, ExpOpts};
use sodiff_core::prelude::*;
use sodiff_graph::generators;
use sodiff_linalg::spectral;

fn main() {
    let opts = ExpOpts::from_args();
    let side: usize = opts.scale(256, 1000);
    let rounds = 5 * side as u64;
    let graph = generators::torus2d(side, side);
    let n = graph.node_count();
    let beta = spectral::analyze(&graph, &Speeds::uniform(n)).beta_opt();
    println!("Figure 3: torus {side}x{side}, discrete vs idealized, {rounds} rounds");

    let stride = stride_for(rounds, 1000);
    let cases: [(&str, Scheme, bool); 4] = [
        ("fig03_discrete_sos", Scheme::sos(beta), true),
        ("fig03_discrete_fos", Scheme::fos(), true),
        ("fig03_ideal_sos", Scheme::sos(beta), false),
        ("fig03_ideal_fos", Scheme::fos(), false),
    ];
    for (name, scheme, discrete) in cases {
        let builder = Experiment::on(&graph);
        let builder = if discrete {
            builder.discrete(Rounding::randomized(opts.seed))
        } else {
            builder.continuous()
        };
        let exp = builder
            .scheme(scheme)
            .init(InitialLoad::paper_default(n))
            .stop(StopCondition::MaxRounds(rounds as usize))
            .build()
            .expect("valid experiment");
        let mut rec = Recorder::every(stride);
        exp.run_with(&mut rec);
        save_recorder(&opts, name, &rec);
    }

    println!();
    println!("expected shape (paper): discrete and idealized curves coincide");
    println!("during decay; the idealized ones keep decaying to ~0 while the");
    println!("discrete ones flatten at a constant remaining imbalance.");
}
