//! Theory validation (Result III): negative load in SOS. For a point
//! spike Δ(0) on top of a uniform base load, sweeps the base load and
//! reports the minimum transient load of continuous and discrete SOS,
//! locating the empirical threshold where negative load disappears and
//! comparing it with the Theorem 10/11 scales √n·Δ(0)/√(1−λ).

use sodiff_bench::ExpOpts;
use sodiff_core::prelude::*;
use sodiff_core::theory;
use sodiff_graph::generators;
use sodiff_linalg::spectral;

fn min_transient(
    graph: &sodiff_graph::Graph,
    base: i64,
    spike: i64,
    beta: f64,
    discrete: bool,
    seed: u64,
    rounds: usize,
) -> f64 {
    let n = graph.node_count();
    let mut loads = vec![base; n];
    loads[0] += spike;
    let builder = Experiment::on(graph);
    let builder = if discrete {
        builder.discrete(Rounding::randomized(seed))
    } else {
        builder.continuous()
    };
    let mut sim = builder
        .sos(beta)
        .init(InitialLoad::Custom(loads))
        .build()
        .expect("valid experiment")
        .simulator();
    sim.run_until(StopCondition::MaxRounds(rounds));
    sim.min_transient_load()
}

fn main() {
    let opts = ExpOpts::from_args();
    let side: usize = opts.scale(24, 48);
    let graph = generators::torus2d(side, side);
    let n = graph.node_count();
    let spec = spectral::analyze(&graph, &Speeds::uniform(n));
    let beta = spec.beta_opt();
    let spike = 10_000i64;
    let delta0 = spike as f64 * (1.0 - 1.0 / n as f64);
    let rounds = 60 * side;

    println!("Negative load in SOS: torus {side}x{side}, spike {spike} on node 0");
    println!(
        "Theorem 10 scale (continuous): {:.0}; Theorem 11 scale (discrete): {:.0}",
        theory::min_initial_load_continuous_sos(n, delta0, spec.gap()),
        theory::min_initial_load_discrete_sos(n, delta0, 4, spec.gap())
    );
    println!(
        "{:>12} {:>20} {:>20}",
        "base load", "min transient (cont)", "min transient (disc)"
    );

    let mut rows = Vec::new();
    let mut empirical_threshold: Option<i64> = None;
    for exp in 0..9 {
        let base = if exp == 0 {
            0
        } else {
            10i64.pow(exp + 1) / 10 * 5
        }; // 0,5,50,...
        let cont = min_transient(&graph, base, spike, beta, false, opts.seed, rounds);
        let disc = min_transient(&graph, base, spike, beta, true, opts.seed, rounds);
        println!("{base:>12} {cont:>20.1} {disc:>20.1}");
        rows.push(format!("{base},{cont},{disc}"));
        if disc >= 0.0 && cont >= 0.0 && empirical_threshold.is_none() {
            empirical_threshold = Some(base);
        }
    }
    sodiff_bench::write_table(
        &opts.path("ablation_negative_load"),
        "base_load,min_transient_continuous,min_transient_discrete",
        &rows,
    );
    println!("\nwrote {}", opts.path("ablation_negative_load").display());
    match empirical_threshold {
        Some(t) => println!(
            "empirical no-negative-load threshold: base ≈ {t} tokens \
             (theorems are conservative upper bounds: {:.0})",
            theory::min_initial_load_discrete_sos(n, delta0, 4, spec.gap())
        ),
        None => println!("negative load persisted across the sweep"),
    }
}
