//! Theory validation (Results I & II): the refined local divergence
//! Υ^C(G), computed numerically from the error-propagation matrices
//! (M^t for FOS, Q(t) for SOS), against the bound shapes of Theorems 4(1)
//! and 9(1) across torus sizes, plus the measured deviation of coupled
//! discrete/continuous runs against Theorem 3's Υ·√(d·log n) form.

use sodiff_bench::ExpOpts;
use sodiff_core::divergence::{refined_local_divergence_at, DivergenceOptions};
use sodiff_core::prelude::*;
use sodiff_core::theory;
use sodiff_graph::generators;
use sodiff_linalg::spectral;

fn main() {
    let opts = ExpOpts::from_args();
    let sides: &[usize] = if opts.full {
        &[8, 12, 16, 24, 32, 48]
    } else {
        &[8, 12, 16, 24]
    };
    println!("Theory validation: refined local divergence and deviation on tori");
    println!(
        "{:>6} {:>10} | {:>12} {:>12} | {:>12} {:>12} | {:>12} {:>14}",
        "side", "gap", "ups_fos", "bound_fos", "ups_sos", "bound_sos", "dev_sos", "thm3_envelope"
    );

    let mut rows = Vec::new();
    for &side in sides {
        let g = generators::torus2d(side, side);
        let n = g.node_count();
        let sp = Speeds::uniform(n);
        let spec = spectral::analyze(&g, &sp);
        let beta = spec.beta_opt();
        let dopts = DivergenceOptions::default();
        let ups_fos = refined_local_divergence_at(&g, &sp, Scheme::fos(), 0, dopts);
        let ups_sos = refined_local_divergence_at(&g, &sp, Scheme::sos(beta), 0, dopts);
        let bound_fos = theory::fos_divergence_bound(4, 1.0, spec.gap());
        let bound_sos = theory::sos_divergence_bound(4, 1.0, spec.gap());
        // Measured deviation of a coupled SOS run vs Theorem 3's
        // Υ·√(d log n) envelope using the *numerically computed* Υ.
        let series = Experiment::on(&g)
            .discrete(Rounding::randomized(opts.seed))
            .sos(beta)
            .init(InitialLoad::paper_default(n))
            .build()
            .expect("valid experiment")
            .coupled_deviation(40 * side)
            .expect("discrete experiment");
        let envelope = ups_sos * (4.0 * (n as f64).ln()).sqrt();
        println!(
            "{side:>6} {:>10.2e} | {ups_fos:>12.3} {bound_fos:>12.3} | {ups_sos:>12.3} {bound_sos:>12.3} | {:>12.2} {envelope:>14.2}",
            spec.gap(),
            series.max()
        );
        rows.push(format!(
            "{side},{},{ups_fos},{bound_fos},{ups_sos},{bound_sos},{},{envelope}",
            spec.gap(),
            series.max()
        ));
    }
    sodiff_bench::write_table(
        &opts.path("ablation_divergence"),
        "side,gap,ups_fos,bound_fos,ups_sos,bound_sos,measured_deviation,theorem3_envelope",
        &rows,
    );
    println!("\nwrote {}", opts.path("ablation_divergence").display());
    println!("expected: Υ grows like gap^(-1/2) (FOS) and gap^(-3/4) (SOS);");
    println!("the measured deviation stays below the Theorem 3 envelope.");
}
