//! Figure 13: hypercube (paper: n = 2²⁰; default here 2¹⁶). SOS, FOS, and
//! the switch to FOS at round 50; 200 rounds. The paper observes only a
//! slight advantage for SOS and a remaining imbalance within one token of
//! FOS's.

use sodiff_bench::{save_recorder, ExpOpts};
use sodiff_core::prelude::*;
use sodiff_graph::generators;
use sodiff_linalg::spectral;

fn main() {
    let opts = ExpOpts::from_args();
    let dim: u32 = opts.scale(16, 20);
    let rounds = 200u64;
    let graph = generators::hypercube(dim);
    let n = graph.node_count();
    let spec = spectral::analyze(&graph, &Speeds::uniform(n));
    let beta = spec.beta_opt();
    println!(
        "Figure 13: hypercube 2^{dim} (n = {n}), lambda = {:.6}, beta = {:.6}",
        spec.lambda, beta
    );

    for (name, scheme, switch) in [
        ("fig13_sos", Scheme::sos(beta), None),
        ("fig13_fos", Scheme::fos(), None),
        ("fig13_fos_at50", Scheme::sos(beta), Some(50u64)),
    ] {
        let mut builder = Experiment::on(&graph)
            .discrete(Rounding::randomized(opts.seed))
            .scheme(scheme)
            .init(InitialLoad::paper_default(n))
            .stop(StopCondition::MaxRounds(rounds as usize));
        if let Some(at) = switch {
            builder = builder.hybrid(SwitchPolicy::AtRound(at));
        }
        let mut rec = Recorder::new();
        builder
            .build()
            .expect("valid experiment")
            .run_with(&mut rec);
        save_recorder(&opts, name, &rec);
    }

    println!();
    println!("expected shape (paper): FOS needs only slightly more rounds");
    println!("than SOS; the FOS remaining imbalance is about one token");
    println!("better than the SOS one.");
}
