//! Figure 8: effect of the switch round on a 100×100 torus. Pure SOS plus
//! hybrids switching to FOS after 300, 500, 700, and 900 rounds; all runs
//! record max−avg (and friends) for 1000 rounds.

use sodiff_bench::{save_recorder, ExpOpts};
use sodiff_core::prelude::*;
use sodiff_graph::generators;
use sodiff_linalg::spectral;

fn main() {
    let opts = ExpOpts::from_args();
    let side: usize = 100; // paper scale
    let rounds = 1000u64;
    let graph = generators::torus2d(side, side);
    let n = graph.node_count();
    let beta = spectral::analyze(&graph, &Speeds::uniform(n)).beta_opt();
    println!("Figure 8: torus {side}x{side}, switch-round sweep, horizon {rounds}");

    let experiment = |policy: Option<SwitchPolicy>| {
        let mut builder = Experiment::on(&graph)
            .discrete(Rounding::randomized(opts.seed))
            .sos(beta)
            .init(InitialLoad::paper_default(n))
            .stop(StopCondition::MaxRounds(rounds as usize));
        if let Some(policy) = policy {
            builder = builder.hybrid(policy);
        }
        builder.build().expect("valid experiment")
    };
    // Pure SOS.
    {
        let mut rec = Recorder::new();
        experiment(None).run_with(&mut rec);
        save_recorder(&opts, "fig08_sos", &rec);
    }
    for switch in [300u64, 500, 700, 900] {
        let mut rec = Recorder::new();
        experiment(Some(SwitchPolicy::AtRound(switch))).run_with(&mut rec);
        save_recorder(&opts, &format!("fig08_fos{switch}"), &rec);
    }

    println!();
    println!("expected shape (paper): every switch produces a sharp drop in");
    println!("max-avg; once the leading eigenvector's impact has faded");
    println!("(~round 700), later switches give no further advantage.");
}
