//! Figure 7: impact of the eigenvectors on the load. SOS on a 100×100
//! torus; per round we project the load vector onto the analytic Fourier
//! eigenbasis of the diffusion matrix and record (a) the amplitude of the
//! second eigenvalue group (the paper's a₄ — one of the four degenerate
//! second eigenvectors), (b) the maximum non-constant amplitude, and
//! (c) the rank of the currently leading eigenvector.
//!
//! The paper used LAPACK to solve V·a = x(t); we use an O(n·(r+c)) DFT
//! per round instead (same coefficients, see `sodiff_linalg::fourier`).

use std::io::Write;

use sodiff_bench::ExpOpts;
use sodiff_core::prelude::*;
use sodiff_graph::generators;
use sodiff_linalg::fourier::TorusModes;
use sodiff_linalg::spectral;

fn main() {
    let opts = ExpOpts::from_args();
    let side: usize = 100; // paper scale — this experiment is cheap
    let rounds = 1000u64;
    let graph = generators::torus2d(side, side);
    let n = graph.node_count();
    let beta = spectral::analyze(&graph, &Speeds::uniform(n)).beta_opt();
    println!("Figure 7: torus {side}x{side}, eigen-coefficient tracking, {rounds} rounds");

    let modes = TorusModes::new(side, side);
    let mut sim = Experiment::on(&graph)
        .discrete(Rounding::randomized(opts.seed))
        .sos(beta)
        .init(InitialLoad::paper_default(n))
        .build()
        .expect("valid experiment")
        .simulator();

    let path = opts.path("fig07_coefficients");
    let mut w = std::io::BufWriter::new(std::fs::File::create(&path).expect("create csv"));
    writeln!(
        w,
        "round,second_group_amplitude,max_amplitude,leading_rank,leading_p,leading_q,leading_eigenvalue"
    )
    .expect("header");

    let mut loads = vec![0.0f64; n];
    for round in 1..=rounds {
        sim.step();
        for (i, l) in loads.iter_mut().enumerate() {
            *l = sim.load_of(i);
        }
        let coeffs = modes.coefficients(&loads);
        // Second eigenvalue group: ranks 2.. with the same eigenvalue as
        // rank 2 (on the square torus: modes (0,1) and (1,0)).
        let lambda2 = coeffs[1].eigenvalue;
        let second_group: f64 = coeffs
            .iter()
            .skip(1)
            .take_while(|c| (c.eigenvalue - lambda2).abs() < 1e-12)
            .map(|c| c.amplitude * c.amplitude)
            .sum::<f64>()
            .sqrt();
        let leading = TorusModes::leading(&coeffs).expect("non-degenerate load");
        writeln!(
            w,
            "{round},{second_group},{},{},{},{},{}",
            leading.amplitude, leading.rank, leading.p, leading.q, leading.eigenvalue
        )
        .expect("row");
    }
    drop(w);
    println!("wrote {}", path.display());
    println!();
    println!("expected shape (paper): from ~round 100 to ~700 the leading");
    println!("coefficient belongs to the second eigenvalue group (a4) and");
    println!("decays exponentially; after ~700 no single eigenvector leads.");
}
