//! Figure 14: random geometric graph with r = 4·(log n)^(1/4) (paper:
//! n = 10⁴; default here 2500). SOS, FOS, and the switch to FOS at round
//! 500; 1000 rounds. RGGs behave like tori: SOS wins clearly and the
//! switch removes the residual imbalance.

use sodiff_bench::{save_recorder, ExpOpts};
use sodiff_core::prelude::*;
use sodiff_graph::generators;
use sodiff_linalg::power::PowerOptions;
use sodiff_linalg::spectral;

fn main() {
    let opts = ExpOpts::from_args();
    let n: usize = opts.scale(2_500, 10_000);
    let rounds = 1000u64;
    let graph = generators::rgg_paper(n, opts.seed);
    let spec = spectral::power_spectrum(
        &graph,
        &Speeds::uniform(n),
        PowerOptions {
            max_iterations: 20_000,
            tolerance: 1e-10,
            seed: opts.seed,
        },
    );
    let beta = spec.beta_opt();
    println!(
        "Figure 14: RGG n = {n}, max degree {}, lambda = {:.6}, beta = {:.6}",
        graph.max_degree(),
        spec.lambda,
        beta
    );

    for (name, scheme, switch) in [
        ("fig14_sos", Scheme::sos(beta), None),
        ("fig14_fos", Scheme::fos(), None),
        ("fig14_fos_at500", Scheme::sos(beta), Some(500u64)),
    ] {
        let mut builder = Experiment::on(&graph)
            .discrete(Rounding::randomized(opts.seed))
            .scheme(scheme)
            .init(InitialLoad::paper_default(n))
            .stop(StopCondition::MaxRounds(rounds as usize));
        if let Some(at) = switch {
            builder = builder.hybrid(SwitchPolicy::AtRound(at));
        }
        let mut rec = Recorder::new();
        builder
            .build()
            .expect("valid experiment")
            .run_with(&mut rec);
        save_recorder(&opts, name, &rec);
    }

    println!();
    println!("expected shape (paper): similar to the torus — a less");
    println!("pronounced potential drop, SOS clearly ahead of FOS, and a");
    println!("post-switch drop of the remaining imbalance.");
}
