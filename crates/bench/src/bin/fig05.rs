//! Figure 5: direct comparison of pure SOS vs the SOS→FOS hybrids of
//! Figure 4 — the three runs advance in lockstep and one merged CSV with
//! their max−avg columns is written.

use std::io::Write;

use sodiff_bench::ExpOpts;
use sodiff_core::prelude::*;
use sodiff_graph::generators;
use sodiff_linalg::spectral;

fn main() {
    let opts = ExpOpts::from_args();
    let side: usize = opts.scale(256, 1000);
    let graph = generators::torus2d(side, side);
    let n = graph.node_count();
    let beta = spectral::analyze(&graph, &Speeds::uniform(n)).beta_opt();
    let scale = side as f64 / 1000.0;
    let switch_a = (2500.0 * scale) as u64;
    let switch_b = (3000.0 * scale) as u64;
    let horizon = (3500.0 * scale) as u64;
    println!("Figure 5: torus {side}x{side}, SOS vs switches at {switch_a} and {switch_b}");

    let exp = Experiment::on(&graph)
        .discrete(Rounding::randomized(opts.seed))
        .sos(beta)
        .init(InitialLoad::paper_default(n))
        .build()
        .expect("valid experiment");
    let make = || exp.simulator();
    let mut sos = make();
    let mut hybrid_a = make();
    let mut hybrid_b = make();

    let path = opts.path("fig05_comparison");
    let mut w = std::io::BufWriter::new(std::fs::File::create(&path).expect("create csv"));
    writeln!(
        w,
        "round,sos_max_avg,switch{switch_a}_max_avg,switch{switch_b}_max_avg"
    )
    .expect("header");
    for round in 1..=horizon {
        if round == switch_a + 1 {
            hybrid_a.switch_scheme(Scheme::fos());
        }
        if round == switch_b + 1 {
            hybrid_b.switch_scheme(Scheme::fos());
        }
        sos.step();
        hybrid_a.step();
        hybrid_b.step();
        if round % 5 == 0 || round > switch_a.saturating_sub(20) {
            writeln!(
                w,
                "{round},{},{},{}",
                sos.metrics().max_minus_avg,
                hybrid_a.metrics().max_minus_avg,
                hybrid_b.metrics().max_minus_avg
            )
            .expect("row");
        }
    }
    drop(w);
    println!("wrote {}", path.display());
    println!(
        "final max-avg: SOS {:.1}, switch@{switch_a} {:.1}, switch@{switch_b} {:.1}",
        sos.metrics().max_minus_avg,
        hybrid_a.metrics().max_minus_avg,
        hybrid_b.metrics().max_minus_avg
    );
    println!("expected (paper): both hybrids end clearly below pure SOS.");
}
