//! Ablation: heterogeneous speed profiles. Runs SOS on a torus under
//! several speed distributions and reports convergence rounds, the
//! proportionality error, and how the spectral gap (and thus β_opt)
//! shifts with heterogeneity.

use sodiff_bench::ExpOpts;
use sodiff_core::prelude::*;
use sodiff_graph::generators;
use sodiff_linalg::power::PowerOptions;
use sodiff_linalg::spectral;

fn main() {
    let opts = ExpOpts::from_args();
    let side: usize = opts.scale(24, 48);
    let graph = generators::torus2d(side, side);
    let n = graph.node_count();
    println!("Ablation: speed profiles on torus {side}x{side}");
    println!(
        "{:<22} {:>8} {:>12} {:>10} {:>12} {:>16}",
        "profile", "s_max", "lambda", "beta", "rounds", "max rel error"
    );

    let profiles: Vec<(&str, Speeds)> = vec![
        ("uniform", Speeds::uniform(n)),
        ("two-class 4x/25%", Speeds::two_class(n, n / 4, 4.0)),
        ("two-class 16x/5%", Speeds::two_class(n, n / 20, 16.0)),
        ("linear ramp to 8", Speeds::linear_ramp(n, 8.0)),
        (
            "skewed max 8",
            Speeds::random_skewed(n, 8.0, 2.0, opts.seed),
        ),
    ];

    let mut rows = Vec::new();
    for (name, speeds) in profiles {
        let spec = spectral::power_spectrum(
            &graph,
            &speeds,
            PowerOptions {
                max_iterations: 50_000,
                tolerance: 1e-12,
                seed: opts.seed,
            },
        );
        let beta = spec.beta_opt();
        let total = 500 * speeds.total() as i64;
        let mut sim = Experiment::on(&graph)
            .discrete(Rounding::randomized(opts.seed))
            .sos(beta)
            .speeds(speeds.clone())
            .init(InitialLoad::point(0, total))
            .build()
            .expect("valid experiment")
            .simulator();
        let report = sim.run_until(StopCondition::Plateau {
            window: 50,
            max_rounds: 200 * side,
        });
        let loads = sim.loads_i64().expect("discrete");
        let rel_err = loads
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let ideal = total as f64 * speeds.get(i) / speeds.total();
                (x as f64 - ideal).abs() / ideal
            })
            .fold(0.0f64, f64::max);
        println!(
            "{name:<22} {:>8.0} {:>12.6} {:>10.4} {:>12} {:>16.4}",
            speeds.max(),
            spec.lambda,
            beta,
            report.rounds,
            rel_err
        );
        rows.push(format!(
            "{name},{},{},{},{},{}",
            speeds.max(),
            spec.lambda,
            beta,
            report.rounds,
            rel_err
        ));
    }
    sodiff_bench::write_table(
        &opts.path("ablation_speeds"),
        "profile,s_max,lambda,beta,rounds,max_rel_error",
        &rows,
    );
    println!("\nwrote {}", opts.path("ablation_speeds").display());
    println!("expected: all profiles balance proportionally; stronger");
    println!("heterogeneity shrinks the gap slightly and raises beta_opt.");
}
