//! Round-executor performance baseline: times the simulation hot loop and
//! emits `BENCH_rounds.json` so the repo's perf trajectory has a measured
//! data point per PR.
//!
//! Cases cover the acceptance grid of the executor work: single-threaded
//! discrete rounds on a 512×512 torus (kernel cost) and sequential vs
//! pooled execution on a 256×256 torus (executor cost), for both the
//! deterministic and the randomized-framework rounding paths plus the
//! continuous scheme. The `sos_threshold_stop` case runs the same SOS
//! kernel under an (unreachable) `BalancedWithin` stop condition, so it
//! measures what a metric-stopped round costs — since the fused in-loop
//! metrics reduction landed, the same as a bare round instead of a round
//! plus an `O(n + m)` metrics sweep. Two fault-axis cases ride the same
//! SOS kernel: `sos_faults_none` (the `sos_threshold_stop` configuration
//! with an explicit `FaultSpec::none()`, CI's zero-cost comparator) and
//! `sos_faults_crash` (crash churn at `p = 0.05`, timing the
//! effective-mask/repair hot loop). Two checkpoint-axis cases do
//! the same for persistence: `sos_ckpt_none` (the `sos_load_none`
//! configuration with the checkpoint axis spelled out as disabled, CI's
//! zero-cost comparator) and `sos_ckpt_every16` (a full versioned
//! snapshot to disk every 16 rounds, timing serialization + write).
//! Two churn-axis cases do the same for live topology churn:
//! `sos_churn_none` (the `sos_mem_full` configuration with the churn
//! plan spelled out as disabled, CI's zero-cost comparator) and
//! `sos_churn_flux` (epoch-aligned join/leave flux with
//! conservation-exact handoff, timing the active-mask round loop).
//! A `driver_batch` entry additionally
//! times a batch of scenarios through one pooled `Driver` (threads
//! spawned once) against the same scenarios as separate `Simulator`s
//! (one pool spawn each).
//!
//! Usage: `perf_baseline [--out <path>] [--secs <s>] [--quick] [--case <substr>]
//! [--scenarios <file>]`
//!
//! * `--out <path>` — where to write the JSON (default `BENCH_rounds.json`),
//! * `--secs <s>` — measurement budget per case (default 1.0),
//! * `--quick` — CI smoke mode: tiny graphs, short budget,
//! * `--case <substr>` — only run cases whose config name contains the
//!   substring; repeatable (a case runs if it matches *any* filter), and
//!   the driver-batch entries are skipped when any filter is set. Used by
//!   the CI perf-regression gate to time just the randomized framework
//!   and the dimension-exchange kernel,
//! * `--scenarios <file>` — use this scenario file for the `driver_batch`
//!   entry instead of the built-in synthetic batch.

use std::fmt::Write as _;
use std::time::Instant;

use sodiff_core::prelude::*;
use sodiff_graph::{generators, Graph};
use sodiff_linalg::spectral;

struct Case {
    graph_name: &'static str,
    config_name: &'static str,
    threads: usize,
    scheme: Scheme,
    /// `None` = continuous mode.
    rounding: Option<Rounding>,
    /// Drive rounds through `run_until` with a per-round metric stop
    /// check (an unreachable threshold, so the round count stays fixed)
    /// instead of bare `step()` calls.
    threshold_stop: bool,
    /// Fault-injection plan for the run; `FaultSpec::none()` keeps the
    /// case on the unperturbed code paths.
    faults: FaultSpec,
    /// Dynamic-workload plan for the run; `LoadSpec::none()` keeps the
    /// case on the pre-load code paths.
    loads: LoadSpec,
    /// Topology-churn plan for the run; `ChurnSpec::none()` keeps the
    /// case on the pre-churn code paths.
    churn: ChurnSpec,
    /// Auto-checkpoint config; `None` keeps the case on the
    /// persistence-free round loop.
    ckpt: Option<CheckpointConfig>,
    /// State-storage width; `MemSpec::Full` keeps the case on the
    /// default full-width (`f64`/`i64`) code paths.
    mem: MemSpec,
}

struct Measurement {
    graph_name: String,
    config_name: String,
    threads: usize,
    nodes: usize,
    edges: usize,
    rounds: u64,
    total_secs: f64,
    ns_per_round: f64,
    ns_per_edge: f64,
    /// Fastest 8-round batch, per edge: the low-noise estimator (OS and
    /// cache noise is strictly additive) that the CI zero-cost gate
    /// compares at a 2% tolerance, where the budget-wide mean is too
    /// jittery on shared runners.
    ns_per_edge_min: f64,
    edge_updates_per_sec: f64,
    tokens_per_sec: f64,
    /// Bytes of mutable simulation state (loads, flow memory, integral
    /// flows, arc fractions — sequential buffers plus the pool job's
    /// atomic mirrors). `mem=compact` halves this.
    state_bytes: usize,
}

fn measure(graph: &Graph, case: &Case, budget_secs: f64) -> Measurement {
    let n = graph.node_count();
    let m = graph.edge_count();
    let builder = Experiment::on(graph);
    let builder = match case.rounding {
        Some(rounding) => builder.discrete(rounding),
        None => builder.continuous(),
    };
    // `paper_default` is 1000·n tokens at node 0; on multi-million-node
    // graphs that exceeds the compact layout's i32 total cap, so compact
    // cases fall back to 100·n (round cost is init-magnitude independent).
    let init = if case.mem == MemSpec::Compact && 1000 * n as i64 > i64::from(i32::MAX / 4) {
        InitialLoad::point(0, 100 * n as i64)
    } else {
        InitialLoad::paper_default(n)
    };
    let builder = builder
        .scheme(case.scheme)
        .threads(case.threads)
        .init(init)
        .faults(case.faults)
        .load(case.loads)
        .churn(case.churn)
        .mem(case.mem);
    let builder = match &case.ckpt {
        Some(ckpt) => builder.checkpoint(ckpt.clone()),
        None => builder,
    };
    let mut sim = builder
        .build()
        .expect("valid benchmark experiment")
        .simulator();
    // Warm up: flow memory, pool threads, caches.
    for _ in 0..3 {
        sim.step();
    }
    // Tokens moved per round, sampled outside the timed region.
    let mut tokens_per_round = 0.0;
    for _ in 0..3 {
        sim.step();
        tokens_per_round += sim
            .previous_flows_to_f64()
            .iter()
            .map(|f| f.abs())
            .sum::<f64>()
            / 3.0;
    }
    let start = Instant::now();
    let mut rounds = 0u64;
    let mut min_batch_secs = f64::INFINITY;
    while start.elapsed().as_secs_f64() < budget_secs {
        let batch_start = Instant::now();
        if case.threshold_stop {
            // A negative threshold never fires: all 8 rounds run, each
            // paying the armed stop-condition check — the path the fused
            // metrics reduction optimizes.
            let report = sim.run_until(StopCondition::BalancedWithin {
                threshold: -1.0,
                max_rounds: 8,
            });
            assert_eq!(report.rounds, 8, "threshold must stay unreachable");
        } else {
            for _ in 0..8 {
                sim.step();
            }
        }
        min_batch_secs = min_batch_secs.min(batch_start.elapsed().as_secs_f64());
        rounds += 8;
    }
    let total_secs = start.elapsed().as_secs_f64();
    let ns_per_round = total_secs * 1e9 / rounds as f64;
    let ns_per_edge = ns_per_round / m as f64;
    let ns_per_edge_min = min_batch_secs * 1e9 / 8.0 / m as f64;
    let state_bytes = sim.state_bytes();
    Measurement {
        graph_name: case.graph_name.to_string(),
        config_name: case.config_name.to_string(),
        threads: case.threads,
        nodes: n,
        edges: m,
        rounds,
        total_secs,
        ns_per_round,
        ns_per_edge,
        ns_per_edge_min,
        edge_updates_per_sec: 1e9 / ns_per_edge,
        tokens_per_sec: tokens_per_round / (ns_per_round / 1e9),
        state_bytes,
    }
}

struct DriverBatchMeasurement {
    source: String,
    scenarios: usize,
    threads: usize,
    total_rounds: u64,
    driver_secs: f64,
    separate_secs: f64,
}

/// Times `specs` through one pooled [`Driver`] against the same specs as
/// separate simulators that each spawn (and join) their own pool.
fn measure_driver_batch(
    specs: &[ScenarioSpec],
    threads: usize,
    source: String,
) -> DriverBatchMeasurement {
    // Warm both paths once (graph generation dominates cold runs).
    let driver = Driver::with_threads(threads).expect("positive thread count");
    assert!(driver.run_batch(specs).errors.is_empty(), "batch failed");

    let start = Instant::now();
    let batch = driver.run_batch(specs);
    let driver_secs = start.elapsed().as_secs_f64();

    let mut separate = specs.to_vec();
    for spec in &mut separate {
        spec.threads = threads;
    }
    let start = Instant::now();
    let mut separate_rounds = 0u64;
    for spec in &separate {
        // One standalone simulator per scenario: pool spawned and joined
        // inside this call.
        separate_rounds += spec.run().expect("valid scenario").rounds;
    }
    let separate_secs = start.elapsed().as_secs_f64();
    assert_eq!(batch.total_rounds, separate_rounds, "paths must agree");

    DriverBatchMeasurement {
        source,
        scenarios: specs.len(),
        threads,
        total_rounds: batch.total_rounds,
        driver_secs,
        separate_secs,
    }
}

/// Times `specs` through a `Driver::concurrent(workers)` (K scenarios in
/// flight, each on the sequential executor, pulled from a work-stealing
/// queue) against a plain sequential `Driver::new()`. On a multi-core
/// host the concurrent driver should approach `workers`× for batches of
/// many similar scenarios; on a single-core container it measures pure
/// scheduling overhead.
fn measure_driver_batch_concurrent(
    specs: &[ScenarioSpec],
    workers: usize,
    source: String,
) -> DriverBatchMeasurement {
    let concurrent = Driver::concurrent(workers).expect("positive worker count");
    let sequential = Driver::new();
    // Warm both paths once.
    assert!(
        concurrent.run_batch(specs).errors.is_empty(),
        "batch failed"
    );

    let start = Instant::now();
    let batch = concurrent.run_batch(specs);
    let concurrent_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let seq_batch = sequential.run_batch(specs);
    let sequential_secs = start.elapsed().as_secs_f64();
    assert_eq!(
        batch.total_rounds, seq_batch.total_rounds,
        "concurrent and sequential drivers must agree"
    );

    DriverBatchMeasurement {
        source,
        scenarios: specs.len(),
        threads: workers,
        total_rounds: batch.total_rounds,
        driver_secs: concurrent_secs,
        separate_secs: sequential_secs,
    }
}

/// Minimal JSON string escaping for the hand-rolled output (the scenario
/// file path is the only user-controlled string).
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The built-in `driver_batch` workload: many small simulations — the
/// serving-style shape where per-`Simulator` pool spawn/join cycles are a
/// visible fraction of the work the driver amortizes away.
fn synthetic_batch(quick: bool) -> Vec<ScenarioSpec> {
    let (side, rounds, count) = if quick { (12, 10, 10) } else { (16, 12, 48) };
    let mut text = String::new();
    for i in 0..count {
        writeln!(
            text,
            "name=batch{i} topology=torus2d:{side}:{side} scheme=sos:1.9 mode=discrete \
             rounding=nearest init=paper stop=rounds:{rounds}"
        )
        .unwrap();
    }
    ScenarioSpec::parse_many(&text).expect("synthetic batch parses")
}

fn main() {
    let mut out_path = String::from("BENCH_rounds.json");
    let mut budget_secs = 1.0f64;
    let mut quick = false;
    let mut case_filters: Vec<String> = Vec::new();
    let mut scenario_file: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out requires a path"),
            "--secs" => {
                budget_secs = args
                    .next()
                    .expect("--secs requires a value")
                    .parse()
                    .expect("--secs must be a number")
            }
            "--quick" => quick = true,
            "--case" => case_filters.push(args.next().expect("--case requires a substring")),
            "--scenarios" => {
                scenario_file = Some(args.next().expect("--scenarios requires a path"))
            }
            other => {
                panic!(
                    "unknown argument {other}; supported: --out <path>, --secs <s>, --quick, \
                     --case <substr>, --scenarios <file>"
                )
            }
        }
    }
    if quick {
        budget_secs = budget_secs.min(0.2);
    }

    let (big_side, mid_side) = if quick { (64, 48) } else { (512, 256) };
    let big_name: &'static str = if quick { "torus64x64" } else { "torus512x512" };
    let mid_name: &'static str = if quick { "torus48x48" } else { "torus256x256" };
    let big = generators::torus2d(big_side, big_side);
    let mid = generators::torus2d(mid_side, mid_side);
    let beta_mid = spectral::analyze(&mid, &Speeds::uniform(mid.node_count())).beta_opt();
    // Scratch directory for the sos_ckpt_every16 snapshots.
    let ckpt_dir = std::env::temp_dir().join(format!("sodiff-bench-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&ckpt_dir).expect("create checkpoint scratch dir");

    // Large-graph locality probes (skipped under `--quick`): a
    // 2048×2048 torus (4.2M nodes, 8.4M edges — per-edge state far past
    // the last-level cache) in generator edge order, and the same graph
    // after `reorder_edges_blocked` renumbers edges node-block-major so
    // flow arrays stream in load order. The blocked graph runs a
    // *different but equally valid* simulation (edge ids key the RNG
    // streams), so these rows are locality probes, not golden surfaces;
    // the compact row shows the diet's bytes cut at this scale.
    let huge = (!quick).then(|| generators::torus2d(2048, 2048));
    let huge_blocked = huge.as_ref().map(|g| g.reorder_edges_blocked(32 * 1024));

    let mut cases: Vec<(&Graph, Case)> = vec![
        (
            &big,
            Case {
                graph_name: big_name,
                config_name: "fos_discrete_nearest",
                threads: 1,
                scheme: Scheme::fos(),
                rounding: Some(Rounding::nearest()),
                threshold_stop: false,
                faults: FaultSpec::none(),
                loads: LoadSpec::none(),
                churn: ChurnSpec::none(),
                ckpt: None,
                mem: MemSpec::Full,
            },
        ),
        (
            &big,
            Case {
                graph_name: big_name,
                config_name: "fos_discrete_randomized",
                threads: 1,
                scheme: Scheme::fos(),
                rounding: Some(Rounding::randomized(42)),
                threshold_stop: false,
                faults: FaultSpec::none(),
                loads: LoadSpec::none(),
                churn: ChurnSpec::none(),
                ckpt: None,
                mem: MemSpec::Full,
            },
        ),
        (
            &mid,
            Case {
                graph_name: mid_name,
                config_name: "sos_discrete_nearest",
                threads: 1,
                scheme: Scheme::sos(beta_mid),
                rounding: Some(Rounding::nearest()),
                threshold_stop: false,
                faults: FaultSpec::none(),
                loads: LoadSpec::none(),
                churn: ChurnSpec::none(),
                ckpt: None,
                mem: MemSpec::Full,
            },
        ),
        (
            &mid,
            Case {
                graph_name: mid_name,
                config_name: "sos_discrete_nearest",
                threads: 4,
                scheme: Scheme::sos(beta_mid),
                rounding: Some(Rounding::nearest()),
                threshold_stop: false,
                faults: FaultSpec::none(),
                loads: LoadSpec::none(),
                churn: ChurnSpec::none(),
                ckpt: None,
                mem: MemSpec::Full,
            },
        ),
        (
            &mid,
            Case {
                graph_name: mid_name,
                config_name: "sos_discrete_randomized",
                threads: 1,
                scheme: Scheme::sos(beta_mid),
                rounding: Some(Rounding::randomized(42)),
                threshold_stop: false,
                faults: FaultSpec::none(),
                loads: LoadSpec::none(),
                churn: ChurnSpec::none(),
                ckpt: None,
                mem: MemSpec::Full,
            },
        ),
        (
            &mid,
            Case {
                graph_name: mid_name,
                config_name: "sos_discrete_randomized",
                threads: 4,
                scheme: Scheme::sos(beta_mid),
                rounding: Some(Rounding::randomized(42)),
                threshold_stop: false,
                faults: FaultSpec::none(),
                loads: LoadSpec::none(),
                churn: ChurnSpec::none(),
                ckpt: None,
                mem: MemSpec::Full,
            },
        ),
        (
            &mid,
            Case {
                graph_name: mid_name,
                config_name: "sos_continuous",
                threads: 1,
                scheme: Scheme::sos(beta_mid),
                rounding: None,
                threshold_stop: false,
                faults: FaultSpec::none(),
                loads: LoadSpec::none(),
                churn: ChurnSpec::none(),
                ckpt: None,
                mem: MemSpec::Full,
            },
        ),
        (
            &mid,
            Case {
                graph_name: mid_name,
                config_name: "sos_continuous",
                threads: 4,
                scheme: Scheme::sos(beta_mid),
                rounding: None,
                threshold_stop: false,
                faults: FaultSpec::none(),
                loads: LoadSpec::none(),
                churn: ChurnSpec::none(),
                ckpt: None,
                mem: MemSpec::Full,
            },
        ),
        // Metric-stopped rounds: same kernel as sos_discrete_nearest but
        // driven through run_until with an armed BalancedWithin check —
        // the per-round delta vs that row is what a metric stop costs
        // (zero extra passes since the fused in-loop reduction).
        (
            &mid,
            Case {
                graph_name: mid_name,
                config_name: "sos_threshold_stop",
                threads: 1,
                scheme: Scheme::sos(beta_mid),
                rounding: Some(Rounding::nearest()),
                threshold_stop: true,
                faults: FaultSpec::none(),
                loads: LoadSpec::none(),
                churn: ChurnSpec::none(),
                ckpt: None,
                mem: MemSpec::Full,
            },
        ),
        // Fault-injection axis. `sos_faults_none` is the exact
        // `sos_threshold_stop` configuration with the fault plan spelled
        // out as `FaultSpec::none()`: the CI zero-cost gate compares the
        // two in the same run to prove a disabled fault axis costs
        // nothing. `sos_faults_crash` measures the faulted hot loop —
        // effective-mask composition, crash epochs, matching repair —
        // and is gated at +25% over the committed ratio like the other
        // kernels.
        (
            &mid,
            Case {
                graph_name: mid_name,
                config_name: "sos_faults_none",
                threads: 1,
                scheme: Scheme::sos(beta_mid),
                rounding: Some(Rounding::nearest()),
                threshold_stop: true,
                faults: FaultSpec::none(),
                loads: LoadSpec::none(),
                churn: ChurnSpec::none(),
                ckpt: None,
                mem: MemSpec::Full,
            },
        ),
        (
            &mid,
            Case {
                graph_name: mid_name,
                config_name: "sos_faults_crash",
                threads: 1,
                scheme: Scheme::sos(beta_mid),
                rounding: Some(Rounding::nearest()),
                threshold_stop: false,
                faults: FaultSpec::none().with_crash(0.05, 42),
                loads: LoadSpec::none(),
                churn: ChurnSpec::none(),
                ckpt: None,
                mem: MemSpec::Full,
            },
        ),
        // Dynamic-workload axis. `sos_load_none` is the exact
        // `sos_faults_none` configuration with the load plan spelled out
        // as `LoadSpec::none()`: the CI zero-cost gate compares the two
        // in the same run to prove a disabled load axis costs nothing.
        // `sos_load_poisson` measures the loaded hot loop — the
        // control-thread generator draws plus the sparse delta
        // application, with no extra per-round sweep — and is gated at
        // +25% over the committed ratio like the other kernels.
        (
            &mid,
            Case {
                graph_name: mid_name,
                config_name: "sos_load_none",
                threads: 1,
                scheme: Scheme::sos(beta_mid),
                rounding: Some(Rounding::nearest()),
                threshold_stop: true,
                faults: FaultSpec::none(),
                loads: LoadSpec::none(),
                churn: ChurnSpec::none(),
                ckpt: None,
                mem: MemSpec::Full,
            },
        ),
        (
            &mid,
            Case {
                graph_name: mid_name,
                config_name: "sos_load_poisson",
                threads: 1,
                scheme: Scheme::sos(beta_mid),
                rounding: Some(Rounding::nearest()),
                threshold_stop: true,
                faults: FaultSpec::none(),
                loads: LoadSpec::none().with_poisson(2.0, 42),
                churn: ChurnSpec::none(),
                ckpt: None,
                mem: MemSpec::Full,
            },
        ),
        // Checkpoint axis. `sos_ckpt_none` is the exact `sos_load_none`
        // configuration with the checkpoint config spelled out as `None`:
        // the CI zero-cost gate compares the two in the same run to prove
        // a disabled persistence axis costs nothing in the round loop.
        // `sos_ckpt_every16` auto-writes the full versioned snapshot to
        // disk every 16 rounds — serialization plus the fsync-free file
        // write — and is gated at +25% over the committed ratio like the
        // other kernels.
        (
            &mid,
            Case {
                graph_name: mid_name,
                config_name: "sos_ckpt_none",
                threads: 1,
                scheme: Scheme::sos(beta_mid),
                rounding: Some(Rounding::nearest()),
                threshold_stop: true,
                faults: FaultSpec::none(),
                loads: LoadSpec::none(),
                churn: ChurnSpec::none(),
                ckpt: None,
                mem: MemSpec::Full,
            },
        ),
        (
            &mid,
            Case {
                graph_name: mid_name,
                config_name: "sos_ckpt_every16",
                threads: 1,
                scheme: Scheme::sos(beta_mid),
                rounding: Some(Rounding::nearest()),
                threshold_stop: true,
                faults: FaultSpec::none(),
                loads: LoadSpec::none(),
                churn: ChurnSpec::none(),
                ckpt: Some(CheckpointConfig {
                    policy: CheckpointPolicy {
                        every: 16,
                        dir: ckpt_dir.clone(),
                    },
                    name: "sos_ckpt_every16".to_string(),
                    spec_line: format!(
                        "name=sos_ckpt_every16 topology=torus2d:{mid_side}:{mid_side}"
                    ),
                }),
                mem: MemSpec::Full,
            },
        ),
        // Memory-layout axis. `sos_mem_full` is the exact
        // `sos_ckpt_none` configuration with the state width spelled
        // out as `MemSpec::Full`: the CI zero-cost gate compares the
        // two in the same run to prove the generic-buffer plumbing
        // costs nothing on the default layout. `sos_mem_compact` runs
        // the same kernel on the half-width (`i32`/`f32`) state — the
        // widen/narrow conversions per access are the measured price of
        // halving `state_bytes` — and is gated at +25% over the
        // committed ratio like the other kernels.
        (
            &mid,
            Case {
                graph_name: mid_name,
                config_name: "sos_mem_full",
                threads: 1,
                scheme: Scheme::sos(beta_mid),
                rounding: Some(Rounding::nearest()),
                threshold_stop: true,
                faults: FaultSpec::none(),
                loads: LoadSpec::none(),
                churn: ChurnSpec::none(),
                ckpt: None,
                mem: MemSpec::Full,
            },
        ),
        (
            &mid,
            Case {
                graph_name: mid_name,
                config_name: "sos_mem_compact",
                threads: 1,
                scheme: Scheme::sos(beta_mid),
                rounding: Some(Rounding::nearest()),
                threshold_stop: true,
                faults: FaultSpec::none(),
                loads: LoadSpec::none(),
                churn: ChurnSpec::none(),
                ckpt: None,
                mem: MemSpec::Compact,
            },
        ),
        // Topology-churn axis. `sos_churn_none` is the exact
        // `sos_mem_full` configuration with the churn plan spelled out
        // as `ChurnSpec::none()`: the CI zero-cost gate compares the two
        // in the same run to prove a disabled churn axis costs nothing —
        // `churn=none` compiles to the exact pre-churn code paths.
        // `sos_churn_flux` measures the churned hot loop — per-epoch
        // membership transitions, conservation-exact handoff, the
        // active-edge mask routing every plan through the masked pass —
        // and is gated at +25% over the committed ratio like the other
        // kernels.
        (
            &mid,
            Case {
                graph_name: mid_name,
                config_name: "sos_churn_none",
                threads: 1,
                scheme: Scheme::sos(beta_mid),
                rounding: Some(Rounding::nearest()),
                threshold_stop: true,
                faults: FaultSpec::none(),
                loads: LoadSpec::none(),
                churn: ChurnSpec::none(),
                ckpt: None,
                mem: MemSpec::Full,
            },
        ),
        (
            &mid,
            Case {
                graph_name: mid_name,
                config_name: "sos_churn_flux",
                threads: 1,
                scheme: Scheme::sos(beta_mid),
                rounding: Some(Rounding::nearest()),
                threshold_stop: false,
                faults: FaultSpec::none(),
                loads: LoadSpec::none(),
                churn: ChurnSpec::none()
                    .with_flux(0.05, 0.4, 42)
                    .with_initial(100.0),
                ckpt: None,
                mem: MemSpec::Full,
            },
        ),
        // Pairwise schemes (scheme-kernel layer): the masked edge pass
        // over the torus's exact 4-coloring, the round-robin maximal
        // matching sweep, and the random-matching plan whose per-round
        // greedy matching generation is part of the measured cost.
        (
            &mid,
            Case {
                graph_name: mid_name,
                config_name: "de_discrete_nearest",
                threads: 1,
                scheme: Scheme::dimension_exchange(1.0),
                rounding: Some(Rounding::nearest()),
                threshold_stop: false,
                faults: FaultSpec::none(),
                loads: LoadSpec::none(),
                churn: ChurnSpec::none(),
                ckpt: None,
                mem: MemSpec::Full,
            },
        ),
        (
            &mid,
            Case {
                graph_name: mid_name,
                config_name: "matching_rr_discrete_nearest",
                threads: 1,
                scheme: Scheme::matching_round_robin(1.0),
                rounding: Some(Rounding::nearest()),
                threshold_stop: false,
                faults: FaultSpec::none(),
                loads: LoadSpec::none(),
                churn: ChurnSpec::none(),
                ckpt: None,
                mem: MemSpec::Full,
            },
        ),
        (
            &mid,
            Case {
                graph_name: mid_name,
                config_name: "matching_random_discrete_nearest",
                threads: 1,
                scheme: Scheme::matching_random(42, 1.0),
                rounding: Some(Rounding::nearest()),
                threshold_stop: false,
                faults: FaultSpec::none(),
                loads: LoadSpec::none(),
                churn: ChurnSpec::none(),
                ckpt: None,
                mem: MemSpec::Full,
            },
        ),
    ];
    if let (Some(huge), Some(huge_blocked)) = (&huge, &huge_blocked) {
        let fos_case = |graph_name: &'static str, config_name: &'static str, mem: MemSpec| Case {
            graph_name,
            config_name,
            threads: 1,
            scheme: Scheme::fos(),
            rounding: Some(Rounding::nearest()),
            threshold_stop: false,
            faults: FaultSpec::none(),
            loads: LoadSpec::none(),
            churn: ChurnSpec::none(),
            ckpt: None,
            mem,
        };
        cases.push((
            huge,
            fos_case("torus2048x2048", "fos_huge_nearest", MemSpec::Full),
        ));
        cases.push((
            huge_blocked,
            fos_case("torus2048x2048_blocked", "fos_huge_nearest", MemSpec::Full),
        ));
        cases.push((
            huge_blocked,
            fos_case(
                "torus2048x2048_blocked",
                "fos_huge_compact",
                MemSpec::Compact,
            ),
        ));
    }

    let mut results = Vec::new();
    for (graph, case) in &cases {
        if !case_filters.is_empty()
            && !case_filters
                .iter()
                .any(|f| case.config_name.contains(f.as_str()))
        {
            continue;
        }
        let r = measure(graph, case, budget_secs);
        println!(
            "{}/{} threads={}: {:.1} ns/round ({:.2} ns/edge, {:.2e} edge-updates/s, {:.2e} tokens/s, {} state bytes)",
            r.graph_name,
            r.config_name,
            r.threads,
            r.ns_per_round,
            r.ns_per_edge,
            r.edge_updates_per_sec,
            r.tokens_per_sec,
            r.state_bytes
        );
        results.push(r);
    }

    // The driver-batch entries are skipped under `--case` (the filter is
    // a per-case regression gate, not a batch benchmark).
    let driver_entries = if case_filters.is_empty() {
        let (specs, source) = match &scenario_file {
            Some(path) => {
                let text = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| panic!("read scenario file {path}: {e}"));
                (
                    ScenarioSpec::parse_many(&text).unwrap_or_else(|e| panic!("{e}")),
                    path.clone(),
                )
            }
            None => (synthetic_batch(quick), "synthetic".to_string()),
        };
        let db = measure_driver_batch(&specs, 4, source.clone());
        println!(
            "driver_batch ({} scenarios, {} threads): pooled driver {:.3}s vs separate \
             simulators {:.3}s ({:.2}x)",
            db.scenarios,
            db.threads,
            db.driver_secs,
            db.separate_secs,
            db.separate_secs / db.driver_secs
        );
        let dbc = measure_driver_batch_concurrent(&specs, 4, source);
        println!(
            "driver_batch_concurrent ({} scenarios, {} workers): concurrent driver {:.3}s vs \
             sequential driver {:.3}s ({:.2}x)",
            dbc.scenarios,
            dbc.threads,
            dbc.driver_secs,
            dbc.separate_secs,
            dbc.separate_secs / dbc.driver_secs
        );
        println!(
            "note: this container is single-core — concurrent-scenario and pooled speedups \
             measure scheduling overhead here, not parallel wall-clock gains; re-measure on a \
             multi-core host"
        );
        Some((db, dbc))
    } else {
        None
    };

    let mut json = String::from("{\n  \"bench\": \"rounds\",\n  \"cases\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"graph\": \"{}\", \"config\": \"{}\", \"threads\": {}, \"nodes\": {}, \"edges\": {}, \"rounds\": {}, \"total_secs\": {:.4}, \"ns_per_round\": {:.1}, \"ns_per_edge\": {:.3}, \"ns_per_edge_min\": {:.3}, \"edge_updates_per_sec\": {:.4e}, \"tokens_per_sec\": {:.4e}, \"state_bytes\": {}}}{comma}",
            r.graph_name,
            r.config_name,
            r.threads,
            r.nodes,
            r.edges,
            r.rounds,
            r.total_secs,
            r.ns_per_round,
            r.ns_per_edge,
            r.ns_per_edge_min,
            r.edge_updates_per_sec,
            r.tokens_per_sec,
            r.state_bytes
        )
        .unwrap();
    }
    if let Some((db, dbc)) = &driver_entries {
        json.push_str("  ],\n");
        writeln!(
            json,
            "  \"driver_batch\": {{\"source\": \"{}\", \"scenarios\": {}, \"threads\": {}, \"total_rounds\": {}, \"driver_secs\": {:.4}, \"separate_secs\": {:.4}, \"speedup\": {:.3}}},",
            json_escape(&db.source),
            db.scenarios,
            db.threads,
            db.total_rounds,
            db.driver_secs,
            db.separate_secs,
            db.separate_secs / db.driver_secs
        )
        .unwrap();
        writeln!(
            json,
            "  \"driver_batch_concurrent\": {{\"source\": \"{}\", \"scenarios\": {}, \"workers\": {}, \"total_rounds\": {}, \"concurrent_secs\": {:.4}, \"sequential_secs\": {:.4}, \"speedup\": {:.3}, \"note\": \"single-core container: speedup measures scheduling overhead, not parallel wall-clock\"}}",
            json_escape(&dbc.source),
            dbc.scenarios,
            dbc.threads,
            dbc.total_rounds,
            dbc.driver_secs,
            dbc.separate_secs,
            dbc.separate_secs / dbc.driver_secs
        )
        .unwrap();
    } else {
        json.push_str("  ]\n");
    }
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_rounds.json");
    std::fs::remove_dir_all(&ckpt_dir).ok();
    println!("wrote {out_path}");
}
