//! Round-executor performance baseline: times the simulation hot loop and
//! emits `BENCH_rounds.json` so the repo's perf trajectory has a measured
//! data point per PR.
//!
//! Cases cover the acceptance grid of the executor work: single-threaded
//! discrete rounds on a 512×512 torus (kernel cost) and sequential vs
//! pooled execution on a 256×256 torus (executor cost), for both the
//! deterministic and the randomized-framework rounding paths plus the
//! continuous scheme.
//!
//! Usage: `perf_baseline [--out <path>] [--secs <s>] [--quick]`
//!
//! * `--out <path>` — where to write the JSON (default `BENCH_rounds.json`),
//! * `--secs <s>` — measurement budget per case (default 1.0),
//! * `--quick` — CI smoke mode: tiny graphs, short budget.

use std::fmt::Write as _;
use std::time::Instant;

use sodiff_core::prelude::*;
use sodiff_graph::{generators, Graph};
use sodiff_linalg::spectral;

struct Case {
    graph_name: &'static str,
    config_name: &'static str,
    threads: usize,
    make: Box<dyn Fn() -> SimulationConfig>,
}

struct Measurement {
    graph_name: String,
    config_name: String,
    threads: usize,
    nodes: usize,
    edges: usize,
    rounds: u64,
    total_secs: f64,
    ns_per_round: f64,
    ns_per_edge: f64,
    edge_updates_per_sec: f64,
    tokens_per_sec: f64,
}

fn measure(graph: &Graph, case: &Case, budget_secs: f64) -> Measurement {
    let n = graph.node_count();
    let m = graph.edge_count();
    let config = (case.make)().with_threads(case.threads);
    let mut sim = Simulator::new(graph, config, InitialLoad::paper_default(n));
    // Warm up: flow memory, pool threads, caches.
    for _ in 0..3 {
        sim.step();
    }
    // Tokens moved per round, sampled outside the timed region.
    let mut tokens_per_round = 0.0;
    for _ in 0..3 {
        sim.step();
        tokens_per_round += sim.previous_flows().iter().map(|f| f.abs()).sum::<f64>() / 3.0;
    }
    let start = Instant::now();
    let mut rounds = 0u64;
    while start.elapsed().as_secs_f64() < budget_secs {
        for _ in 0..8 {
            sim.step();
        }
        rounds += 8;
    }
    let total_secs = start.elapsed().as_secs_f64();
    let ns_per_round = total_secs * 1e9 / rounds as f64;
    let ns_per_edge = ns_per_round / m as f64;
    Measurement {
        graph_name: case.graph_name.to_string(),
        config_name: case.config_name.to_string(),
        threads: case.threads,
        nodes: n,
        edges: m,
        rounds,
        total_secs,
        ns_per_round,
        ns_per_edge,
        edge_updates_per_sec: 1e9 / ns_per_edge,
        tokens_per_sec: tokens_per_round / (ns_per_round / 1e9),
    }
}

fn main() {
    let mut out_path = String::from("BENCH_rounds.json");
    let mut budget_secs = 1.0f64;
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out requires a path"),
            "--secs" => {
                budget_secs = args
                    .next()
                    .expect("--secs requires a value")
                    .parse()
                    .expect("--secs must be a number")
            }
            "--quick" => quick = true,
            other => {
                panic!("unknown argument {other}; supported: --out <path>, --secs <s>, --quick")
            }
        }
    }
    if quick {
        budget_secs = budget_secs.min(0.2);
    }

    let (big_side, mid_side) = if quick { (64, 48) } else { (512, 256) };
    let big_name: &'static str = if quick { "torus64x64" } else { "torus512x512" };
    let mid_name: &'static str = if quick { "torus48x48" } else { "torus256x256" };
    let big = generators::torus2d(big_side, big_side);
    let mid = generators::torus2d(mid_side, mid_side);
    let beta_mid = spectral::analyze(&mid, &Speeds::uniform(mid.node_count())).beta_opt();

    let cases: Vec<(&Graph, Case)> = vec![
        (
            &big,
            Case {
                graph_name: big_name,
                config_name: "fos_discrete_nearest",
                threads: 1,
                make: Box::new(|| SimulationConfig::discrete(Scheme::fos(), Rounding::nearest())),
            },
        ),
        (
            &big,
            Case {
                graph_name: big_name,
                config_name: "fos_discrete_randomized",
                threads: 1,
                make: Box::new(|| {
                    SimulationConfig::discrete(Scheme::fos(), Rounding::randomized(42))
                }),
            },
        ),
        (
            &mid,
            Case {
                graph_name: mid_name,
                config_name: "sos_discrete_nearest",
                threads: 1,
                make: Box::new(move || {
                    SimulationConfig::discrete(Scheme::sos(beta_mid), Rounding::nearest())
                }),
            },
        ),
        (
            &mid,
            Case {
                graph_name: mid_name,
                config_name: "sos_discrete_nearest",
                threads: 4,
                make: Box::new(move || {
                    SimulationConfig::discrete(Scheme::sos(beta_mid), Rounding::nearest())
                }),
            },
        ),
        (
            &mid,
            Case {
                graph_name: mid_name,
                config_name: "sos_discrete_randomized",
                threads: 1,
                make: Box::new(move || {
                    SimulationConfig::discrete(Scheme::sos(beta_mid), Rounding::randomized(42))
                }),
            },
        ),
        (
            &mid,
            Case {
                graph_name: mid_name,
                config_name: "sos_discrete_randomized",
                threads: 4,
                make: Box::new(move || {
                    SimulationConfig::discrete(Scheme::sos(beta_mid), Rounding::randomized(42))
                }),
            },
        ),
        (
            &mid,
            Case {
                graph_name: mid_name,
                config_name: "sos_continuous",
                threads: 1,
                make: Box::new(move || SimulationConfig::continuous(Scheme::sos(beta_mid))),
            },
        ),
        (
            &mid,
            Case {
                graph_name: mid_name,
                config_name: "sos_continuous",
                threads: 4,
                make: Box::new(move || SimulationConfig::continuous(Scheme::sos(beta_mid))),
            },
        ),
    ];

    let mut results = Vec::new();
    for (graph, case) in &cases {
        let r = measure(graph, case, budget_secs);
        println!(
            "{}/{} threads={}: {:.1} ns/round ({:.2} ns/edge, {:.2e} edge-updates/s, {:.2e} tokens/s)",
            r.graph_name,
            r.config_name,
            r.threads,
            r.ns_per_round,
            r.ns_per_edge,
            r.edge_updates_per_sec,
            r.tokens_per_sec
        );
        results.push(r);
    }

    let mut json = String::from("{\n  \"bench\": \"rounds\",\n  \"cases\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"graph\": \"{}\", \"config\": \"{}\", \"threads\": {}, \"nodes\": {}, \"edges\": {}, \"rounds\": {}, \"total_secs\": {:.4}, \"ns_per_round\": {:.1}, \"ns_per_edge\": {:.3}, \"edge_updates_per_sec\": {:.4e}, \"tokens_per_sec\": {:.4e}}}{comma}",
            r.graph_name,
            r.config_name,
            r.threads,
            r.nodes,
            r.edges,
            r.rounds,
            r.total_secs,
            r.ns_per_round,
            r.ns_per_edge,
            r.edge_updates_per_sec,
            r.tokens_per_sec
        )
        .unwrap();
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_rounds.json");
    println!("wrote {out_path}");
}
