//! Figure 6: idealized SOS (IEEE-754 doubles) vs randomized-rounding SOS.
//! Left plot: max−avg of both; right plot: the absolute error of the
//! idealized simulation's total load (float drift), which the paper shows
//! is negligible (~1e-8..1e-4 tokens).

use std::io::Write;

use sodiff_bench::{save_recorder, stride_for, ExpOpts};
use sodiff_core::prelude::*;
use sodiff_graph::generators;
use sodiff_linalg::spectral;

fn main() {
    let opts = ExpOpts::from_args();
    let side: usize = opts.scale(256, 1000);
    let rounds = 5 * side as u64;
    let graph = generators::torus2d(side, side);
    let n = graph.node_count();
    let beta = spectral::analyze(&graph, &Speeds::uniform(n)).beta_opt();
    println!("Figure 6: torus {side}x{side}, idealized vs discrete SOS");

    let stride = stride_for(rounds, 1000);
    // Discrete randomized SOS.
    {
        let mut sim = Experiment::on(&graph)
            .discrete(Rounding::randomized(opts.seed))
            .sos(beta)
            .init(InitialLoad::paper_default(n))
            .build()
            .expect("valid experiment")
            .simulator();
        let mut rec = Recorder::every(stride);
        sim.run_until_with(StopCondition::MaxRounds(rounds as usize), &mut rec);
        save_recorder(&opts, "fig06_discrete", &rec);
    }
    // Idealized SOS with explicit float-drift column.
    {
        let mut sim = Experiment::on(&graph)
            .continuous()
            .sos(beta)
            .init(InitialLoad::paper_default(n))
            .build()
            .expect("valid experiment")
            .simulator();
        let mut rec = Recorder::every(stride);
        sim.run_until_with(StopCondition::MaxRounds(rounds as usize), &mut rec);
        save_recorder(&opts, "fig06_ideal", &rec);

        let path = opts.path("fig06_float_error");
        let mut w = std::io::BufWriter::new(std::fs::File::create(&path).expect("create csv"));
        writeln!(w, "round,abs_total_load_error").expect("header");
        let initial = sim.initial_total();
        for row in rec.rows() {
            writeln!(w, "{},{:e}", row.round, (row.total_load - initial).abs()).expect("row");
        }
        println!(
            "float drift after {rounds} rounds: {:e} tokens -> {}",
            (sim.total_load() - initial).abs(),
            path.display()
        );
    }

    println!();
    println!("expected shape (paper): both max-avg curves coincide until the");
    println!("discrete one plateaus; the idealized total-load error stays in");
    println!("the 1e-8..1e-4 range — quantification noise only.");
}
