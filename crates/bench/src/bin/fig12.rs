//! Figure 12: random graph in the configuration model with d = ⌊log₂ n⌋
//! (paper: n = 10⁶, d = 19; default here n = 10⁵). SOS, FOS, and the
//! switch to FOS at round 12. On these expander-like graphs FOS and SOS
//! behave almost identically.

use sodiff_bench::{save_recorder, ExpOpts};
use sodiff_core::prelude::*;
use sodiff_graph::generators;
use sodiff_linalg::power::PowerOptions;
use sodiff_linalg::spectral;

fn main() {
    let opts = ExpOpts::from_args();
    let n: usize = opts.scale(100_000, 1_000_000);
    let rounds = 100u64;
    let graph = generators::random_graph_cm(n, opts.seed).expect("CM parameters");
    let spec = spectral::power_spectrum(
        &graph,
        &Speeds::uniform(n),
        PowerOptions {
            max_iterations: 2_000,
            tolerance: 1e-9,
            seed: opts.seed,
        },
    );
    let beta = spec.beta_opt();
    println!(
        "Figure 12: CM random graph n = {n}, d = {}, lambda = {:.6}, beta = {:.6}",
        graph.max_degree(),
        spec.lambda,
        beta
    );

    for (name, scheme, switch) in [
        ("fig12_sos", Scheme::sos(beta), None),
        ("fig12_fos", Scheme::fos(), None),
        ("fig12_fos_at12", Scheme::sos(beta), Some(12u64)),
    ] {
        let mut builder = Experiment::on(&graph)
            .discrete(Rounding::randomized(opts.seed))
            .scheme(scheme)
            .init(InitialLoad::paper_default(n))
            .stop(StopCondition::MaxRounds(rounds as usize));
        if let Some(at) = switch {
            builder = builder.hybrid(SwitchPolicy::AtRound(at));
        }
        let mut rec = Recorder::new();
        builder
            .build()
            .expect("valid experiment")
            .run_with(&mut rec);
        save_recorder(&opts, name, &rec);
    }

    println!();
    println!("expected shape (paper): all three curves drop within ~20-40");
    println!("rounds and end at the same small remaining imbalance — on");
    println!("graphs with a large spectral gap SOS buys almost nothing.");
}
