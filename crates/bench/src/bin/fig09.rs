//! Figures 9 and 10: grayscale wavefront renders of the torus load under
//! SOS with adaptive shading, at the paper's checkpoints 500, 1000, 1100,
//! 1200, and 1400 (scaled with the torus side). The load spreads in
//! circles from the four image corners and the fronts collapse at the
//! center — the moment the discontinuities of Figure 1 occur.

use sodiff_bench::ExpOpts;
use sodiff_core::prelude::*;
use sodiff_graph::generators;
use sodiff_linalg::spectral;
use sodiff_viz::{render_torus, Shading};

fn main() {
    let opts = ExpOpts::from_args();
    let side: usize = opts.scale(256, 1000);
    let graph = generators::torus2d(side, side);
    let n = graph.node_count();
    let beta = spectral::analyze(&graph, &Speeds::uniform(n)).beta_opt();
    println!("Figures 9/10: torus {side}x{side} wavefront renders");

    let mut sim = Experiment::on(&graph)
        .discrete(Rounding::randomized(opts.seed))
        .sos(beta)
        .init(InitialLoad::paper_default(n))
        .build()
        .expect("valid experiment")
        .simulator();

    let scale = side as f64 / 1000.0;
    let mut checkpoints: Vec<u64> = [500.0f64, 1000.0, 1100.0, 1200.0, 1400.0]
        .iter()
        .map(|r| (r * scale).round().max(1.0) as u64)
        .collect();
    checkpoints.dedup();

    let mut loads = vec![0.0f64; n];
    for cp in checkpoints {
        while sim.round() < cp {
            sim.step();
        }
        for (i, l) in loads.iter_mut().enumerate() {
            *l = sim.load_of(i);
        }
        let img = render_torus(side, side, &loads, Shading::Adaptive);
        let path = opts.out_dir.join(format!("fig09_round{cp:05}.pgm"));
        img.save_pgm(&path).expect("write frame");
        let m = sim.metrics();
        println!(
            "round {cp:>5}: max-avg {:>12.1}, local diff {:>12.1} -> {}",
            m.max_minus_avg,
            m.max_local_diff,
            path.display()
        );
    }
    println!();
    println!("expected (paper): circular fronts emanate from the corners");
    println!("(node 0 wraps around) and collapse at the center near the");
    println!("1200-step checkpoint (scaled with the side).");
}
