//! Figure 2: impact of the initial load volume. SOS on a 2D torus with
//! average loads 10, 100, and 1000 per node (all placed on node 0);
//! the paper's finding is that the trajectory shape barely depends on the
//! amount of initial load, especially after convergence.

use sodiff_bench::{save_recorder, stride_for, ExpOpts};
use sodiff_core::prelude::*;
use sodiff_graph::generators;
use sodiff_linalg::spectral;

fn main() {
    let opts = ExpOpts::from_args();
    let side: usize = opts.scale(256, 1000);
    let rounds = 5 * side as u64;
    let graph = generators::torus2d(side, side);
    let n = graph.node_count();
    let beta = spectral::analyze(&graph, &Speeds::uniform(n)).beta_opt();
    println!("Figure 2: torus {side}x{side}, average loads 10/100/1000");

    let stride = stride_for(rounds, 1000);
    for avg in [10i64, 100, 1000] {
        let exp = Experiment::on(&graph)
            .discrete(Rounding::randomized(opts.seed))
            .sos(beta)
            .init(InitialLoad::point(0, avg * n as i64))
            .stop(StopCondition::MaxRounds(rounds as usize))
            .build()
            .expect("valid experiment");
        let mut rec = Recorder::every(stride);
        exp.run_with(&mut rec);
        save_recorder(&opts, &format!("fig02_avg{avg}"), &rec);
    }

    println!();
    println!("expected shape (paper): the three curves differ by a constant");
    println!("vertical offset during decay and coincide after convergence —");
    println!("the remaining imbalance does not depend on the load volume.");
}
