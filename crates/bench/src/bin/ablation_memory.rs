//! Ablation: SOS flow-memory source in the discrete process. The paper's
//! stateless process feeds the *rounded* previous flow back into the SOS
//! recurrence; the alternative remembers the unrounded scheduled flow.
//! This compares their remaining imbalance and deviation.

use sodiff_bench::ExpOpts;
use sodiff_core::prelude::*;
use sodiff_graph::generators;
use sodiff_linalg::spectral;

fn main() {
    let opts = ExpOpts::from_args();
    let side: usize = opts.scale(64, 256);
    let rounds = 20 * side;
    let graph = generators::torus2d(side, side);
    let n = graph.node_count();
    let beta = spectral::analyze(&graph, &Speeds::uniform(n)).beta_opt();
    println!("Ablation: SOS flow memory on torus {side}x{side}, {rounds} rounds");
    println!(
        "{:<14} {:>14} {:>14} {:>16}",
        "memory", "max - avg", "max deviation", "min transient"
    );

    let mut rows = Vec::new();
    for (name, memory) in [
        ("rounded", FlowMemory::Rounded),
        ("scheduled", FlowMemory::Scheduled),
    ] {
        let exp = Experiment::on(&graph)
            .discrete(Rounding::randomized(opts.seed))
            .sos(beta)
            .flow_memory(memory)
            .init(InitialLoad::paper_default(n))
            .build()
            .expect("valid experiment");
        let series = exp.coupled_deviation(rounds).expect("discrete experiment");
        let mut sim = exp.simulator();
        sim.run_until(StopCondition::MaxRounds(rounds));
        let m = sim.metrics();
        println!(
            "{:<14} {:>14.1} {:>14.1} {:>16.1}",
            name,
            m.max_minus_avg,
            series.max(),
            sim.min_transient_load()
        );
        rows.push(format!(
            "{name},{},{},{}",
            m.max_minus_avg,
            series.max(),
            sim.min_transient_load()
        ));
    }
    sodiff_bench::write_table(
        &opts.path("ablation_memory"),
        "memory,max_minus_avg,max_deviation,min_transient",
        &rows,
    );
    println!("\nwrote {}", opts.path("ablation_memory").display());
    println!("expected: both balance; the stateless (rounded) variant is the");
    println!("one the paper analyzes and needs no extra per-edge state.");
}
