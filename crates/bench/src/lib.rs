//! Shared harness for the per-figure experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper. Each accepts:
//!
//! * `--full` — run the paper-scale configuration (10⁶-node graphs, 5000
//!   rounds); the default is a scaled-down configuration with the same
//!   qualitative behavior that finishes in seconds to a few minutes,
//! * `--out <dir>` — where to write CSV series (default
//!   `target/experiments`),
//! * `--seed <n>` — RNG seed (default 42).
//!
//! Series are CSV files with one row per recorded round; the columns are
//! the paper's metrics (`max − avg`, max local difference, potential/n,
//! minimum load, minimum transient load, total load).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use sodiff_core::{MetricsRow, Recorder};

/// Common command-line options of the experiment binaries.
#[derive(Debug, Clone)]
pub struct ExpOpts {
    /// Run the paper-scale configuration.
    pub full: bool,
    /// Output directory for CSV series.
    pub out_dir: PathBuf,
    /// Base RNG seed.
    pub seed: u64,
}

impl ExpOpts {
    /// Parses `--full`, `--out <dir>`, and `--seed <n>` from `std::env`.
    ///
    /// # Panics
    ///
    /// Panics (with a usage message) on unknown arguments.
    pub fn from_args() -> Self {
        let mut opts = Self {
            full: false,
            out_dir: PathBuf::from("target/experiments"),
            seed: 42,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--full" => opts.full = true,
                "--out" => {
                    opts.out_dir =
                        PathBuf::from(args.next().expect("--out requires a directory argument"));
                }
                "--seed" => {
                    opts.seed = args
                        .next()
                        .expect("--seed requires a value")
                        .parse()
                        .expect("--seed value must be an integer");
                }
                other => {
                    panic!("unknown argument {other}; supported: --full, --out <dir>, --seed <n>")
                }
            }
        }
        fs::create_dir_all(&opts.out_dir).expect("create output directory");
        opts
    }

    /// Picks the scaled or full value.
    pub fn scale<T>(&self, scaled: T, full: T) -> T {
        if self.full {
            full
        } else {
            scaled
        }
    }

    /// Path of a series file in the output directory.
    pub fn path(&self, name: &str) -> PathBuf {
        self.out_dir.join(format!("{name}.csv"))
    }
}

/// Writes a recorded metric series as CSV.
///
/// # Panics
///
/// Panics on I/O errors (experiment binaries treat those as fatal).
pub fn write_series(path: &Path, rows: &[MetricsRow]) {
    let mut w = BufWriter::new(File::create(path).expect("create series file"));
    writeln!(
        w,
        "round,max_minus_avg,max_local_diff,potential_over_n,min_load,min_transient,total_load"
    )
    .expect("write header");
    for r in rows {
        writeln!(
            w,
            "{},{},{},{},{},{},{}",
            r.round,
            r.metrics.max_minus_avg,
            r.metrics.max_local_diff,
            r.metrics.potential_over_n,
            r.metrics.min_load,
            r.min_transient,
            r.total_load
        )
        .expect("write row");
    }
}

/// Writes a recorder's rows and prints a one-line summary.
pub fn save_recorder(opts: &ExpOpts, name: &str, rec: &Recorder) {
    let path = opts.path(name);
    write_series(&path, rec.rows());
    if let Some(last) = rec.last() {
        println!(
            "{name}: {} rows -> {} (final max-avg {:.2}, local diff {:.2})",
            rec.rows().len(),
            path.display(),
            last.metrics.max_minus_avg,
            last.metrics.max_local_diff
        );
    } else {
        println!("{name}: 0 rows -> {}", path.display());
    }
}

/// Writes a generic CSV table (for non-series experiments like Table I).
///
/// # Panics
///
/// Panics on I/O errors.
pub fn write_table(path: &Path, header: &str, rows: &[String]) {
    let mut w = BufWriter::new(File::create(path).expect("create table file"));
    writeln!(w, "{header}").expect("write header");
    for row in rows {
        writeln!(w, "{row}").expect("write row");
    }
}

/// A stride that yields roughly `target_points` recorded rows over
/// `rounds` rounds (at least 1).
pub fn stride_for(rounds: u64, target_points: u64) -> u64 {
    (rounds / target_points.max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_math() {
        assert_eq!(stride_for(1000, 100), 10);
        assert_eq!(stride_for(50, 100), 1);
        assert_eq!(stride_for(0, 0), 1);
    }

    #[test]
    fn scale_picks_by_flag() {
        let mut o = ExpOpts {
            full: false,
            out_dir: PathBuf::from("/tmp"),
            seed: 1,
        };
        assert_eq!(o.scale(10, 1000), 10);
        o.full = true;
        assert_eq!(o.scale(10, 1000), 1000);
    }

    #[test]
    fn series_roundtrip() {
        use sodiff_core::prelude::*;
        let dir = std::env::temp_dir().join("sodiff_bench_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.csv");
        let g = sodiff_graph::generators::cycle(8);
        let mut sim = Experiment::on(&g)
            .discrete(Rounding::randomized(1))
            .init(InitialLoad::point(0, 80))
            .build()
            .unwrap()
            .simulator();
        let mut rec = Recorder::new();
        sim.run_until_with(StopCondition::MaxRounds(5), &mut rec);
        write_series(&path, rec.rows());
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("round,max_minus_avg"));
        assert_eq!(text.lines().count(), 6);
        fs::remove_file(path).ok();
    }
}
