//! Property-based tests of the linear-algebra substrate.

use proptest::collection::vec;
use proptest::prelude::*;

use sodiff_graph::{GraphBuilder, Speeds};
use sodiff_linalg::dense::DenseMatrix;
use sodiff_linalg::diffusion::DiffusionOperator;
use sodiff_linalg::fourier::TorusModes;
use sodiff_linalg::jacobi::eigen_symmetric;
use sodiff_linalg::power::{dominant_eigenvalue, PowerOptions};
use sodiff_linalg::vector;

fn random_symmetric(n: usize) -> impl Strategy<Value = DenseMatrix> {
    vec(-1.0f64..1.0, n * (n + 1) / 2).prop_map(move |upper| {
        let mut m = DenseMatrix::zeros(n, n);
        let mut it = upper.into_iter();
        for i in 0..n {
            for j in i..n {
                let x = it.next().unwrap();
                m[(i, j)] = x;
                m[(j, i)] = x;
            }
        }
        m
    })
}

/// Random connected graph (spanning tree + extras) with random speeds.
fn network() -> impl Strategy<Value = (sodiff_graph::Graph, Speeds)> {
    (2usize..=16, any::<u64>(), 1.0f64..8.0).prop_map(|(n, seed, smax)| {
        let mut b = GraphBuilder::new(n);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 1..n as u32 {
            b.add_edge((next() % i as u64) as u32, i).unwrap();
        }
        for _ in 0..n / 2 {
            let u = (next() % n as u64) as u32;
            let v = (next() % n as u64) as u32;
            b.add_edge_dedup(u, v);
        }
        let speeds = Speeds::new(
            (0..n)
                .map(|_| 1.0 + (smax - 1.0) * (next() % 1000) as f64 / 1000.0)
                .collect(),
        );
        (b.build(), speeds)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Jacobi reconstructs A·v = λ·v and preserves the trace.
    #[test]
    fn jacobi_eigenpairs_are_valid(a in random_symmetric(8)) {
        let e = eigen_symmetric(&a);
        let trace: f64 = (0..8).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-8);
        for k in 0..8 {
            let v = e.vector(k);
            let mut av = vec![0.0; 8];
            a.matvec(&v, &mut av);
            for i in 0..8 {
                prop_assert!((av[i] - e.values[k] * v[i]).abs() < 1e-8);
            }
        }
    }

    /// Power iteration with deflation agrees with Jacobi on the dominant
    /// eigenvalue of shifted PSD matrices.
    #[test]
    fn power_matches_jacobi(a in random_symmetric(6)) {
        // Shift to make the spectrum non-negative so plain power iteration
        // converges: B = A + 8I (|entries| ≤ 1 ⇒ ‖A‖ ≤ 6 < 8).
        let e = eigen_symmetric(&a);
        let r = dominant_eigenvalue(
            6,
            |x, y| {
                a.matvec(x, y);
                for (yi, xi) in y.iter_mut().zip(x) {
                    *yi += 8.0 * xi;
                }
            },
            &[],
            PowerOptions { max_iterations: 200_000, tolerance: 1e-14, seed: 7 },
        );
        prop_assert!(
            (r.value - (e.values[0] + 8.0)).abs() < 1e-5,
            "power {} vs jacobi {}", r.value, e.values[0] + 8.0
        );
    }

    /// The diffusion matrix always conserves load (column sums 1) and has
    /// spectral radius ≤ 1 for any network and speeds.
    #[test]
    fn diffusion_matrix_structure((g, speeds) in network()) {
        let n = g.node_count();
        let op = DiffusionOperator::new(&g, &speeds);
        let m = op.to_dense();
        for j in 0..n {
            let col: f64 = (0..n).map(|i| m[(i, j)]).sum();
            prop_assert!((col - 1.0).abs() < 1e-10, "column {j} sums to {col}");
        }
        // All eigenvalues of B in [-1, 1].
        let b = op.to_dense_symmetrized();
        let e = eigen_symmetric(&b);
        prop_assert!((e.values[0] - 1.0).abs() < 1e-8, "top eigenvalue {}", e.values[0]);
        prop_assert!(*e.values.last().unwrap() >= -1.0 - 1e-8);
    }

    /// Matrix-free apply matches the dense materialization.
    #[test]
    fn apply_matches_dense((g, speeds) in network(), raw in vec(-50.0f64..50.0, 16)) {
        let n = g.node_count();
        let x: Vec<f64> = raw.into_iter().take(n).chain(std::iter::repeat(0.0)).take(n).collect();
        let op = DiffusionOperator::new(&g, &speeds);
        let mut fast = vec![0.0; n];
        op.apply(&x, &mut fast);
        let mut dense = vec![0.0; n];
        op.to_dense().matvec(&x, &mut dense);
        for (a, b) in fast.iter().zip(&dense) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Parseval: the DFT coefficients preserve the energy of any torus
    /// load grid.
    #[test]
    fn fourier_parseval(
        rows in 3usize..8,
        cols in 3usize..8,
        raw in vec(-100.0f64..100.0, 64),
    ) {
        let loads: Vec<f64> = raw.into_iter().cycle().take(rows * cols).collect();
        let tm = TorusModes::new(rows, cols);
        let coeffs = tm.coefficients(&loads);
        let energy: f64 = coeffs.iter().map(|c| c.amplitude * c.amplitude).sum();
        let direct = vector::dot(&loads, &loads);
        prop_assert!(
            (energy - direct).abs() < 1e-6 * direct.max(1.0),
            "parseval: {energy} vs {direct}"
        );
    }

    /// The constant grid projects entirely onto the μ = 1 mode.
    #[test]
    fn fourier_constant_grid(rows in 3usize..8, cols in 3usize..8, c in -50.0f64..50.0) {
        let tm = TorusModes::new(rows, cols);
        let n = rows * cols;
        let coeffs = tm.coefficients(&vec![c; n]);
        prop_assert!((coeffs[0].amplitude - c.abs() * (n as f64).sqrt()).abs() < 1e-7);
        for m in &coeffs[1..] {
            prop_assert!(m.amplitude < 1e-7);
        }
    }

    /// vector helpers: Cauchy-Schwarz and normalization.
    #[test]
    fn vector_helpers(a in vec(-10.0f64..10.0, 8), b in vec(-10.0f64..10.0, 8)) {
        let dot = vector::dot(&a, &b);
        prop_assert!(dot.abs() <= vector::norm2(&a) * vector::norm2(&b) + 1e-9);
        let mut c = a.clone();
        let norm = vector::normalize(&mut c);
        if norm > 0.0 {
            prop_assert!((vector::norm2(&c) - 1.0).abs() < 1e-9);
            let unit = c.clone();
            vector::orthogonalize_against(&mut c, &unit);
            prop_assert!(vector::norm2(&c) < 1e-9);
        }
    }
}
