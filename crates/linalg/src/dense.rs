//! A minimal row-major dense matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Row-major dense `rows × cols` matrix of `f64`.
///
/// Only the operations needed by the eigensolvers and tests are provided.
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "dense matrix shape mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `r`.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Extracts column `c`.
    pub fn column(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec: x length");
        assert_eq!(y.len(), self.rows, "matvec: y length");
        for (r, yr) in y.iter_mut().enumerate() {
            *yr = crate::vector::dot(self.row(r), x);
        }
    }

    /// `A·B`.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.rows, "matmul: inner dimensions");
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Maximum absolute asymmetry `max |A_{ij} − A_{ji}|` (0 for symmetric).
    pub fn asymmetry(&self) -> f64 {
        assert_eq!(self.rows, self.cols);
        let mut worst = 0.0f64;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        worst
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec() {
        let i = DenseMatrix::identity(3);
        let mut y = vec![0.0; 3];
        i.matvec(&[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_small() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = DenseMatrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let c = a.matmul(&b);
        assert_eq!(c, DenseMatrix::from_vec(2, 2, vec![2.0, 1.0, 4.0, 3.0]));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn asymmetry_detects() {
        let mut a = DenseMatrix::identity(2);
        assert_eq!(a.asymmetry(), 0.0);
        a[(0, 1)] = 0.5;
        assert_eq!(a.asymmetry(), 0.5);
    }

    #[test]
    fn column_extraction() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.column(1), vec![2.0, 4.0]);
    }
}
