//! Cyclic Jacobi eigensolver for real symmetric matrices.
//!
//! Replaces the paper's LAPACK dependency for full eigendecompositions.
//! Jacobi rotation is slower than Householder tridiagonalization but is
//! simple, numerically robust, and produces orthogonal eigenvectors —
//! plenty for the `n ≲ 3000` instances used in coefficient tracking.

use crate::dense::DenseMatrix;

/// Result of a symmetric eigendecomposition `A = V·diag(λ)·Vᵀ`.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues sorted in descending order.
    pub values: Vec<f64>,
    /// Matrix whose *column* `k` is the (unit) eigenvector of `values[k]`.
    pub vectors: DenseMatrix,
}

impl EigenDecomposition {
    /// The eigenvector for `values[k]` as an owned vector.
    pub fn vector(&self, k: usize) -> Vec<f64> {
        self.vectors.column(k)
    }
}

/// Computes the full eigendecomposition of the symmetric matrix `a`.
///
/// # Panics
///
/// Panics if `a` is not square or is materially asymmetric
/// (`asymmetry > 1e-9 · max|A|`).
pub fn eigen_symmetric(a: &DenseMatrix) -> EigenDecomposition {
    assert_eq!(a.rows(), a.cols(), "eigen_symmetric: matrix must be square");
    let scale = a.max_abs().max(1.0);
    assert!(
        a.asymmetry() <= 1e-9 * scale,
        "eigen_symmetric: matrix is not symmetric"
    );
    let n = a.rows();
    let mut m = a.clone();
    let mut v = DenseMatrix::identity(n);

    let off = |m: &DenseMatrix| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                s += m[(i, j)] * m[(i, j)];
            }
        }
        s
    };

    let tol = 1e-24 * scale * scale * (n as f64).max(1.0);
    let max_sweeps = 64;
    for _ in 0..max_sweeps {
        if off(&m) <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Standard stable rotation computation (Golub & Van Loan).
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // A ← JᵀAJ applied to rows/columns p and q.
                for k in 0..n {
                    let akp = m[(k, p)];
                    let akq = m[(k, q)];
                    m[(k, p)] = c * akp - s * akq;
                    m[(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = m[(p, k)];
                    let aqk = m[(q, k)];
                    m[(p, k)] = c * apk - s * aqk;
                    m[(q, k)] = s * apk + c * aqk;
                }
                // Accumulate V ← V·J.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).expect("finite eigenvalues"));

    let values = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = DenseMatrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_col)] = v[(r, old_col)];
        }
    }
    EigenDecomposition { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::{dot, norm2};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_symmetric(n: usize, seed: u64) -> DenseMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let x = rng.random_range(-1.0..1.0);
                a[(i, j)] = x;
                a[(j, i)] = x;
            }
        }
        a
    }

    #[test]
    fn diagonal_matrix_eigen() {
        let mut a = DenseMatrix::zeros(3, 3);
        a[(0, 0)] = 3.0;
        a[(1, 1)] = -1.0;
        a[(2, 2)] = 2.0;
        let e = eigen_symmetric(&a);
        assert_eq!(e.values, vec![3.0, 2.0, -1.0]);
    }

    #[test]
    fn two_by_two_known() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = DenseMatrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let e = eigen_symmetric(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        // Eigenvector of 3 is (1,1)/√2 up to sign.
        let v = e.vector(0);
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((v[0] - v[1]).abs() < 1e-12);
    }

    #[test]
    fn reconstructs_random_matrices() {
        for seed in 0..3 {
            let n = 12;
            let a = random_symmetric(n, seed);
            let e = eigen_symmetric(&a);
            // Check A·v_k = λ_k·v_k for all k.
            for k in 0..n {
                let v = e.vector(k);
                let mut av = vec![0.0; n];
                a.matvec(&v, &mut av);
                for i in 0..n {
                    assert!(
                        (av[i] - e.values[k] * v[i]).abs() < 1e-9,
                        "residual too large (seed {seed}, k {k})"
                    );
                }
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = random_symmetric(10, 99);
        let e = eigen_symmetric(&a);
        for i in 0..10 {
            let vi = e.vector(i);
            assert!((norm2(&vi) - 1.0).abs() < 1e-10);
            for j in (i + 1)..10 {
                let vj = e.vector(j);
                assert!(dot(&vi, &vj).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn trace_is_preserved() {
        let a = random_symmetric(15, 5);
        let trace: f64 = (0..15).map(|i| a[(i, i)]).sum();
        let e = eigen_symmetric(&a);
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "not symmetric")]
    fn rejects_asymmetric_input() {
        let a = DenseMatrix::from_vec(2, 2, vec![0.0, 1.0, 0.0, 0.0]);
        eigen_symmetric(&a);
    }
}
