//! The diffusion operator `M = I − L·S⁻¹` of a (heterogeneous) network,
//! applied matrix-free.
//!
//! `L` is the `α`-weighted Laplacian with
//! `α_{i,j} = 1/(max(d_i, d_j) + 1)` (paper Section II), `S = diag(s_i)`
//! the speed matrix. In the homogeneous case (`s ≡ 1`) this is the usual
//! symmetric doubly-stochastic diffusion matrix; in the heterogeneous case
//! `M` itself is not symmetric but `B = S^{-1/2}·M·S^{1/2}` is, which is
//! what the spectral routines operate on.

use sodiff_graph::{EdgeId, Graph, Speeds};

use crate::dense::DenseMatrix;

/// Matrix-free application of `M = I − L·S⁻¹` for a fixed graph and speeds.
///
/// # Example
///
/// ```
/// use sodiff_graph::{generators, Speeds};
/// use sodiff_linalg::diffusion::DiffusionOperator;
///
/// let g = generators::cycle(4);
/// let s = Speeds::uniform(4);
/// let op = DiffusionOperator::new(&g, &s);
/// // The all-ones vector is the fixed point in the homogeneous model.
/// let mut out = vec![0.0; 4];
/// op.apply(&[1.0; 4], &mut out);
/// assert_eq!(out, vec![1.0; 4]);
/// ```
#[derive(Debug, Clone)]
pub struct DiffusionOperator<'a> {
    graph: &'a Graph,
    speeds: &'a Speeds,
    edge_alpha: Vec<f64>,
}

impl<'a> DiffusionOperator<'a> {
    /// Builds the operator, precomputing `α_e` for every canonical edge.
    ///
    /// # Panics
    ///
    /// Panics if `speeds.len() != graph.node_count()`.
    pub fn new(graph: &'a Graph, speeds: &'a Speeds) -> Self {
        assert_eq!(
            speeds.len(),
            graph.node_count(),
            "speeds length must match node count"
        );
        let edge_alpha = graph
            .edges()
            .iter()
            .map(|&(u, v)| graph.alpha(u, v))
            .collect();
        Self {
            graph,
            speeds,
            edge_alpha,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The node speeds.
    pub fn speeds(&self) -> &Speeds {
        self.speeds
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.graph.node_count()
    }

    /// Returns `true` for the empty graph.
    pub fn is_empty(&self) -> bool {
        self.graph.node_count() == 0
    }

    /// Diffusion weight `α_e` of canonical edge `e`.
    #[inline]
    pub fn alpha(&self, e: EdgeId) -> f64 {
        self.edge_alpha[e as usize]
    }

    /// `out = M·x`, i.e. `out_i = x_i − Σ_{j∈N(i)} α_{ij}·(x_i/s_i − x_j/s_j)`.
    pub fn apply(&self, x: &[f64], out: &mut [f64]) {
        let n = self.len();
        assert_eq!(x.len(), n);
        assert_eq!(out.len(), n);
        out.copy_from_slice(x);
        for (e, &(u, v)) in self.graph.edges().iter().enumerate() {
            let (u, v) = (u as usize, v as usize);
            let flow = self.edge_alpha[e] * (x[u] / self.speeds.get(u) - x[v] / self.speeds.get(v));
            out[u] -= flow;
            out[v] += flow;
        }
    }

    /// The continuous FOS flow over every canonical edge for load vector
    /// `x`: `flows[e] = α_e·(x_u/s_u − x_v/s_v)` with `(u, v)` the canonical
    /// (ordered) endpoints. A positive value means load moves `u → v`.
    pub fn fos_edge_flows(&self, x: &[f64], flows: &mut [f64]) {
        assert_eq!(x.len(), self.len());
        assert_eq!(flows.len(), self.graph.edge_count());
        for (e, &(u, v)) in self.graph.edges().iter().enumerate() {
            let (u, v) = (u as usize, v as usize);
            flows[e] = self.edge_alpha[e] * (x[u] / self.speeds.get(u) - x[v] / self.speeds.get(v));
        }
    }

    /// `out = B·x` with the symmetrized operator
    /// `B = S^{-1/2}·M·S^{1/2}` (equal to `M` in the homogeneous model).
    pub fn apply_symmetrized(&self, x: &[f64], out: &mut [f64]) {
        let n = self.len();
        assert_eq!(x.len(), n);
        assert_eq!(out.len(), n);
        if self.speeds.is_unit() {
            self.apply(x, out);
            return;
        }
        // B_{ij} = (S^{-1/2} M S^{1/2})_{ij}; work through temporaries.
        let scaled: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, &xi)| xi * self.speeds.get(i).sqrt())
            .collect();
        self.apply(&scaled, out);
        for (i, o) in out.iter_mut().enumerate() {
            *o /= self.speeds.get(i).sqrt();
        }
    }

    /// The unit principal eigenvector of `B` (eigenvalue 1):
    /// `v_i ∝ √s_i`.
    pub fn principal_symmetrized_eigenvector(&self) -> Vec<f64> {
        let mut v: Vec<f64> = (0..self.len()).map(|i| self.speeds.get(i).sqrt()).collect();
        crate::vector::normalize(&mut v);
        v
    }

    /// Materializes `M` as a dense matrix (tests and small instances only).
    pub fn to_dense(&self) -> DenseMatrix {
        let n = self.len();
        let mut m = DenseMatrix::identity(n);
        for (e, &(u, v)) in self.graph.edges().iter().enumerate() {
            let a = self.edge_alpha[e];
            let (u, v) = (u as usize, v as usize);
            m[(u, u)] -= a / self.speeds.get(u);
            m[(u, v)] += a / self.speeds.get(v);
            m[(v, v)] -= a / self.speeds.get(v);
            m[(v, u)] += a / self.speeds.get(u);
        }
        m
    }

    /// Materializes the symmetrized `B = S^{-1/2}·M·S^{1/2}` densely.
    pub fn to_dense_symmetrized(&self) -> DenseMatrix {
        let n = self.len();
        let mut b = self.to_dense();
        for i in 0..n {
            for j in 0..n {
                b[(i, j)] *= (self.speeds.get(j) / self.speeds.get(i)).sqrt();
            }
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sodiff_graph::generators;

    #[test]
    fn rows_of_m_are_stochastic_homogeneous() {
        let g = generators::torus2d(4, 4);
        let s = Speeds::uniform(16);
        let m = DiffusionOperator::new(&g, &s).to_dense();
        for i in 0..16 {
            let sum: f64 = m.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(m.row(i).iter().all(|&x| x >= 0.0));
        }
        assert!(m.asymmetry() < 1e-15);
    }

    #[test]
    fn columns_sum_to_one_heterogeneous() {
        // Load conservation: column sums of M are 1 also with speeds.
        let g = generators::cycle(5);
        let s = Speeds::new(vec![1.0, 2.0, 4.0, 1.5, 3.0]);
        let m = DiffusionOperator::new(&g, &s).to_dense();
        for j in 0..5 {
            let sum: f64 = (0..5).map(|i| m[(i, j)]).sum();
            assert!((sum - 1.0).abs() < 1e-12, "column {j} sums to {sum}");
        }
    }

    #[test]
    fn balanced_vector_is_fixed_point() {
        let g = generators::torus2d(3, 3);
        let s = Speeds::linear_ramp(9, 5.0);
        let op = DiffusionOperator::new(&g, &s);
        let bal = s.balanced_load(900.0);
        let mut out = vec![0.0; 9];
        op.apply(&bal, &mut out);
        for (a, b) in bal.iter().zip(&out) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn apply_matches_dense() {
        let g = generators::hypercube(3);
        let s = Speeds::linear_ramp(8, 3.0);
        let op = DiffusionOperator::new(&g, &s);
        let x: Vec<f64> = (0..8).map(|i| (i * i) as f64).collect();
        let mut fast = vec![0.0; 8];
        op.apply(&x, &mut fast);
        let mut dense = vec![0.0; 8];
        op.to_dense().matvec(&x, &mut dense);
        for (a, b) in fast.iter().zip(&dense) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn symmetrized_is_symmetric() {
        let g = generators::cycle(6);
        let s = Speeds::new(vec![1.0, 8.0, 2.0, 1.0, 4.0, 2.0]);
        let op = DiffusionOperator::new(&g, &s);
        let b = op.to_dense_symmetrized();
        assert!(b.asymmetry() < 1e-12, "asymmetry {}", b.asymmetry());
    }

    #[test]
    fn symmetrized_apply_matches_dense() {
        let g = generators::cycle(6);
        let s = Speeds::new(vec![1.0, 8.0, 2.0, 1.0, 4.0, 2.0]);
        let op = DiffusionOperator::new(&g, &s);
        let b = op.to_dense_symmetrized();
        let x: Vec<f64> = (0..6).map(|i| i as f64 - 2.0).collect();
        let mut fast = vec![0.0; 6];
        op.apply_symmetrized(&x, &mut fast);
        let mut dense = vec![0.0; 6];
        b.matvec(&x, &mut dense);
        for (a, b) in fast.iter().zip(&dense) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn principal_eigenvector_has_eigenvalue_one() {
        let g = generators::torus2d(3, 4);
        let s = Speeds::random_skewed(12, 6.0, 1.5, 3);
        let op = DiffusionOperator::new(&g, &s);
        let v = op.principal_symmetrized_eigenvector();
        let mut out = vec![0.0; 12];
        op.apply_symmetrized(&v, &mut out);
        for (a, b) in v.iter().zip(&out) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn fos_flows_are_conservative() {
        let g = generators::torus2d(4, 4);
        let s = Speeds::uniform(16);
        let op = DiffusionOperator::new(&g, &s);
        let x: Vec<f64> = (0..16).map(|i| (i % 5) as f64 * 10.0).collect();
        let mut flows = vec![0.0; g.edge_count()];
        op.fos_edge_flows(&x, &mut flows);
        // Applying the flows reproduces M·x.
        let mut by_flows = x.clone();
        for (e, &(u, v)) in g.edges().iter().enumerate() {
            by_flows[u as usize] -= flows[e];
            by_flows[v as usize] += flows[e];
        }
        let mut direct = vec![0.0; 16];
        op.apply(&x, &mut direct);
        for (a, b) in by_flows.iter().zip(&direct) {
            assert!((a - b).abs() < 1e-10);
        }
    }
}
