//! Spectral analysis of diffusion matrices: the second-largest eigenvalue
//! magnitude `λ` that controls convergence rates and the optimal SOS
//! parameter `β_opt = 2/(1+√(1−λ²))` (paper Section II).
//!
//! Dispatch order:
//!
//! 1. analytic closed forms for generated tori, hypercubes, cycles, and
//!    complete graphs in the normalized homogeneous model (`s ≡ 1`),
//! 2. dense Jacobi eigendecomposition for small graphs,
//! 3. shifted power iteration with deflation on the symmetrized operator
//!    `B = S^{-1/2}·M·S^{1/2}` otherwise.

use std::f64::consts::PI;

use sodiff_graph::{Graph, GraphKind, Speeds};

use crate::diffusion::DiffusionOperator;
use crate::jacobi;
use crate::power::{dominant_eigenvalue, PowerOptions};

/// Above this node count the dense Jacobi path is skipped.
pub const DENSE_LIMIT: usize = 600;

/// How `λ` was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpectralMethod {
    /// Closed form for a torus.
    AnalyticTorus,
    /// Closed form for a hypercube.
    AnalyticHypercube,
    /// Closed form for a cycle.
    AnalyticCycle,
    /// Closed form for the complete graph.
    AnalyticComplete,
    /// Dense Jacobi eigendecomposition of `B`.
    DenseJacobi,
    /// Shifted power iteration with deflation on `B`.
    PowerIteration,
}

/// Spectral summary of a diffusion matrix.
#[derive(Debug, Clone, Copy)]
pub struct Spectrum {
    /// `λ`: the largest magnitude among non-principal eigenvalues,
    /// `max(|λ₂|, |λ_n|)`.
    pub lambda: f64,
    /// Second-largest eigenvalue (signed).
    pub lambda_2: f64,
    /// Smallest eigenvalue (signed).
    pub lambda_min: f64,
    /// Which solver produced the numbers.
    pub method: SpectralMethod,
}

impl Spectrum {
    /// The eigenvalue gap `1 − λ`.
    pub fn gap(&self) -> f64 {
        1.0 - self.lambda
    }

    /// The optimal SOS relaxation parameter for this spectrum.
    pub fn beta_opt(&self) -> f64 {
        beta_opt(self.lambda)
    }
}

/// `β_opt = 2 / (1 + √(1 − λ²))` (Muthukrishnan et al.; paper Section II).
///
/// # Panics
///
/// Panics unless `0 ≤ λ < 1`.
pub fn beta_opt(lambda: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&lambda),
        "beta_opt requires 0 <= lambda < 1, got {lambda}"
    );
    2.0 / (1.0 + (1.0 - lambda * lambda).sqrt())
}

/// Computes the spectrum of `M = I − L·S⁻¹` for the given network.
///
/// # Panics
///
/// Panics if the graph is disconnected (λ = 1: diffusion cannot balance
/// across components and `β_opt` is undefined), if it has fewer than two
/// nodes, or if `speeds.len() != graph.node_count()`.
pub fn analyze(graph: &Graph, speeds: &Speeds) -> Spectrum {
    assert!(
        graph.node_count() >= 2,
        "spectral analysis needs at least two nodes"
    );
    assert!(
        graph.is_connected(),
        "spectral analysis requires a connected graph"
    );
    if speeds.is_unit() {
        match graph.kind() {
            GraphKind::Torus(dims) if dims.iter().all(|&d| d >= 3) => {
                return torus_spectrum(dims);
            }
            GraphKind::Hypercube(dim) => return hypercube_spectrum(*dim),
            GraphKind::Cycle => return cycle_spectrum(graph.node_count()),
            GraphKind::Complete => {
                return Spectrum {
                    lambda: 0.0,
                    lambda_2: 0.0,
                    lambda_min: 0.0,
                    method: SpectralMethod::AnalyticComplete,
                };
            }
            _ => {}
        }
    }
    if graph.node_count() <= DENSE_LIMIT {
        dense_spectrum(graph, speeds)
    } else {
        power_spectrum(graph, speeds, PowerOptions::default())
    }
}

/// Spectrum of a k-dimensional torus (all sides ≥ 3, homogeneous model).
///
/// Degree is `2k`, `α = 1/(2k+1)`, and the Laplacian eigenvalues separate
/// per axis: `ℓ(p) = Σ_axis (2 − 2cos(2π·p_axis/len_axis))`.
pub fn torus_spectrum(dims: &[u32]) -> Spectrum {
    assert!(dims.iter().all(|&d| d >= 3));
    let k = dims.len() as f64;
    let alpha = 1.0 / (2.0 * k + 1.0);
    // Smallest non-zero Laplacian eigenvalue: one axis at mode 1 (pick the
    // longest side), the rest at 0.
    let min_nonzero = dims
        .iter()
        .map(|&len| 2.0 - 2.0 * (2.0 * PI / len as f64).cos())
        .fold(f64::INFINITY, f64::min);
    // Largest Laplacian eigenvalue: every axis at its extreme mode.
    let max_l: f64 = dims
        .iter()
        .map(|&len| {
            let p = len / 2; // integer mode with angle closest to π
            2.0 - 2.0 * (2.0 * PI * p as f64 / len as f64).cos()
        })
        .sum();
    let lambda_2 = 1.0 - alpha * min_nonzero;
    let lambda_min = 1.0 - alpha * max_l;
    Spectrum {
        lambda: lambda_2.abs().max(lambda_min.abs()),
        lambda_2,
        lambda_min,
        method: SpectralMethod::AnalyticTorus,
    }
}

/// Spectrum of the `dim`-dimensional hypercube (homogeneous model):
/// eigenvalues `1 − 2j/(dim+1)`, `j = 0..dim`.
pub fn hypercube_spectrum(dim: u32) -> Spectrum {
    assert!(dim >= 1);
    let d = dim as f64;
    let lambda_2 = 1.0 - 2.0 / (d + 1.0);
    let lambda_min = 1.0 - 2.0 * d / (d + 1.0);
    Spectrum {
        lambda: lambda_2.abs().max(lambda_min.abs()),
        lambda_2,
        lambda_min,
        method: SpectralMethod::AnalyticHypercube,
    }
}

/// Spectrum of the cycle on `n ≥ 3` nodes (homogeneous model):
/// eigenvalues `1 − (2/3)(1 − cos(2πp/n))`.
pub fn cycle_spectrum(n: usize) -> Spectrum {
    assert!(n >= 3);
    let lambda_2 = 1.0 - 2.0 / 3.0 * (1.0 - (2.0 * PI / n as f64).cos());
    let p = n / 2;
    let lambda_min = 1.0 - 2.0 / 3.0 * (1.0 - (2.0 * PI * p as f64 / n as f64).cos());
    Spectrum {
        lambda: lambda_2.abs().max(lambda_min.abs()),
        lambda_2,
        lambda_min,
        method: SpectralMethod::AnalyticCycle,
    }
}

/// Dense-Jacobi spectrum of an arbitrary small network.
pub fn dense_spectrum(graph: &Graph, speeds: &Speeds) -> Spectrum {
    let op = DiffusionOperator::new(graph, speeds);
    let b = op.to_dense_symmetrized();
    let eig = jacobi::eigen_symmetric(&b);
    // values are sorted descending; values[0] == 1 is the principal one.
    let lambda_2 = eig.values[1];
    let lambda_min = *eig.values.last().expect("n >= 2");
    Spectrum {
        lambda: lambda_2.abs().max(lambda_min.abs()),
        lambda_2,
        lambda_min,
        method: SpectralMethod::DenseJacobi,
    }
}

/// Power-iteration spectrum of a large network.
///
/// Runs two shifted, deflated power iterations on
/// `B = S^{-1/2}·M·S^{1/2}`: `(B + I)/2` for `λ₂` and `(I − B)/2` for
/// `λ_min`; both shifted operators have non-negative spectra, so the plain
/// Rayleigh quotient converges without oscillation.
pub fn power_spectrum(graph: &Graph, speeds: &Speeds, opts: PowerOptions) -> Spectrum {
    let op = DiffusionOperator::new(graph, speeds);
    let n = op.len();
    let principal = op.principal_symmetrized_eigenvector();

    // (B + I)/2: eigenvalues (μ+1)/2 ∈ [0, 1], dominant deflated = (λ₂+1)/2.
    let r2 = dominant_eigenvalue(
        n,
        |x, y| {
            op.apply_symmetrized(x, y);
            for (yi, xi) in y.iter_mut().zip(x) {
                *yi = 0.5 * (*yi + xi);
            }
        },
        &[&principal],
        opts,
    );
    let lambda_2 = 2.0 * r2.value - 1.0;

    // (I − B)/2: eigenvalues (1−μ)/2 ≥ 0, dominant = (1−λ_min)/2. The
    // principal direction maps to 0, so no deflation is needed, but it
    // costs little and speeds convergence up.
    let rm = dominant_eigenvalue(
        n,
        |x, y| {
            op.apply_symmetrized(x, y);
            for (yi, xi) in y.iter_mut().zip(x) {
                *yi = 0.5 * (xi - *yi);
            }
        },
        &[&principal],
        opts,
    );
    let lambda_min = 1.0 - 2.0 * rm.value;

    Spectrum {
        lambda: lambda_2.abs().max(lambda_min.abs()),
        lambda_2,
        lambda_min,
        method: SpectralMethod::PowerIteration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sodiff_graph::generators;

    /// Table I of the paper: β for the 1000×1000 torus. The paper's values
    /// come from their numerical solver; our closed form agrees to ~2e-7,
    /// which is the precision of the published digits.
    #[test]
    fn table1_torus_1000() {
        let s = torus_spectrum(&[1000, 1000]);
        let beta = s.beta_opt();
        assert!(
            (beta - 1.9920836447).abs() < 5e-7,
            "beta {beta} != paper value 1.9920836447"
        );
    }

    /// Table I: β for the 100×100 torus (see `table1_torus_1000` on the
    /// tolerance).
    #[test]
    fn table1_torus_100() {
        let beta = torus_spectrum(&[100, 100]).beta_opt();
        assert!(
            (beta - 1.9235874877).abs() < 1e-7,
            "beta {beta} != paper value 1.9235874877"
        );
    }

    /// Table I: β for the 2^20 hypercube.
    #[test]
    fn table1_hypercube_20() {
        let beta = hypercube_spectrum(20).beta_opt();
        assert!(
            (beta - 1.4026054847).abs() < 1e-9,
            "beta {beta} != paper value 1.4026054847"
        );
    }

    #[test]
    fn beta_opt_bounds() {
        assert_eq!(beta_opt(0.0), 1.0);
        assert!(beta_opt(0.999999) < 2.0);
        let betas: Vec<f64> = [0.1, 0.5, 0.9, 0.99].iter().map(|&l| beta_opt(l)).collect();
        assert!(betas.windows(2).all(|w| w[0] < w[1]), "beta_opt increases");
    }

    #[test]
    #[should_panic(expected = "beta_opt requires")]
    fn beta_opt_rejects_one() {
        beta_opt(1.0);
    }

    #[test]
    fn analytic_matches_dense_for_torus() {
        let g = generators::torus2d(4, 5);
        let s = Speeds::uniform(20);
        let analytic = analyze(&g, &s);
        assert_eq!(analytic.method, SpectralMethod::AnalyticTorus);
        let dense = dense_spectrum(&g, &s);
        assert!((analytic.lambda_2 - dense.lambda_2).abs() < 1e-9);
        assert!((analytic.lambda_min - dense.lambda_min).abs() < 1e-9);
    }

    #[test]
    fn analytic_matches_dense_for_hypercube() {
        let g = generators::hypercube(4);
        let s = Speeds::uniform(16);
        let a = analyze(&g, &s);
        assert_eq!(a.method, SpectralMethod::AnalyticHypercube);
        let d = dense_spectrum(&g, &s);
        assert!((a.lambda_2 - d.lambda_2).abs() < 1e-9);
        assert!((a.lambda_min - d.lambda_min).abs() < 1e-9);
    }

    #[test]
    fn analytic_matches_dense_for_cycle() {
        let g = generators::cycle(9);
        let s = Speeds::uniform(9);
        let a = analyze(&g, &s);
        assert_eq!(a.method, SpectralMethod::AnalyticCycle);
        let d = dense_spectrum(&g, &s);
        assert!((a.lambda_2 - d.lambda_2).abs() < 1e-9);
        assert!((a.lambda_min - d.lambda_min).abs() < 1e-9);
    }

    #[test]
    fn complete_graph_lambda_zero() {
        let g = generators::complete(8);
        let s = Speeds::uniform(8);
        let a = analyze(&g, &s);
        assert_eq!(a.lambda, 0.0);
        let d = dense_spectrum(&g, &s);
        assert!(d.lambda.abs() < 1e-10);
    }

    #[test]
    fn power_matches_dense_on_medium_graph() {
        let g = generators::random_regular(120, 6, 1).unwrap();
        let s = Speeds::uniform(120);
        let d = dense_spectrum(&g, &s);
        let p = power_spectrum(&g, &s, PowerOptions::default());
        assert!(
            (d.lambda_2 - p.lambda_2).abs() < 1e-6,
            "dense {} vs power {}",
            d.lambda_2,
            p.lambda_2
        );
        assert!((d.lambda_min - p.lambda_min).abs() < 1e-6);
    }

    #[test]
    fn heterogeneous_dense_spectrum_is_real() {
        let g = generators::torus2d(4, 4);
        let s = Speeds::linear_ramp(16, 8.0);
        let spec = analyze(&g, &s);
        assert_eq!(spec.method, SpectralMethod::DenseJacobi);
        assert!(spec.lambda < 1.0);
        assert!(spec.lambda > 0.0);
        // Heterogeneous power iteration agrees.
        let p = power_spectrum(&g, &s, PowerOptions::default());
        assert!((spec.lambda_2 - p.lambda_2).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn rejects_disconnected() {
        let mut b = sodiff_graph::GraphBuilder::new(4);
        b.add_edge(0, 1).unwrap();
        b.add_edge(2, 3).unwrap();
        let g = b.build();
        analyze(&g, &Speeds::uniform(4));
    }

    #[test]
    fn small_torus_sides_fall_back_to_dense() {
        // torus2d(2, 2) degenerates to a 4-cycle whose analytic torus
        // formula does not apply; dispatch must go numeric.
        let g = generators::torus2d(2, 5);
        let s = Speeds::uniform(10);
        let spec = analyze(&g, &s);
        assert_eq!(spec.method, SpectralMethod::DenseJacobi);
    }
}
