//! Linear-algebra substrate for the `sodiff` workspace.
//!
//! The paper's evaluation relies on LAPACK for eigenvalue computations
//! (Section VI); this crate replaces it with self-contained solvers:
//!
//! * [`dense::DenseMatrix`] — a small row-major dense matrix,
//! * [`jacobi`] — a cyclic Jacobi eigensolver for symmetric matrices
//!   (exact eigendecomposition for the small instances used in
//!   coefficient-tracking experiments),
//! * [`power`] — power iteration with deflation for the dominant and
//!   second eigenvalues of large sparse symmetric operators,
//! * [`diffusion`] — the diffusion operator `M = I − L·S⁻¹` of a
//!   (heterogeneous) network, applied matrix-free in `O(|E|)`,
//! * [`spectral`] — computation of the second-largest eigenvalue magnitude
//!   `λ` (and thus `β_opt = 2/(1+√(1−λ²))`), dispatching to analytic
//!   formulas for tori/hypercubes/cycles/complete graphs and to the
//!   numerical solvers otherwise,
//! * [`fourier`] — the analytic Fourier eigenbasis of 2D tori used to
//!   track per-eigenvector load coefficients (paper Figures 7 and 15)
//!   without a dense `V·a = x` solve.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dense;
pub mod diffusion;
pub mod fourier;
pub mod jacobi;
pub mod power;
pub mod spectral;
pub mod vector;
