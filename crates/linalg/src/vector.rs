//! Small dense-vector helpers shared by the solvers.

/// Dot product `⟨a, b⟩`.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm `‖a‖₂`.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Infinity norm `‖a‖_∞`.
#[inline]
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0, |m, &x| m.max(x.abs()))
}

/// `y ← y + alpha·x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scales `a` in place by `1/‖a‖₂`; returns the prior norm.
///
/// Leaves a zero vector untouched and returns 0.
pub fn normalize(a: &mut [f64]) -> f64 {
    let n = norm2(a);
    if n > 0.0 {
        for x in a.iter_mut() {
            *x /= n;
        }
    }
    n
}

/// Removes the component of `a` along the (unit) direction `u`:
/// `a ← a − ⟨a, u⟩·u`.
pub fn orthogonalize_against(a: &mut [f64], u: &[f64]) {
    let c = dot(a, u);
    axpy(-c, u, a);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let a = [3.0, 4.0];
        assert_eq!(dot(&a, &a), 25.0);
        assert_eq!(norm2(&a), 5.0);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[10.0, -1.0], &mut y);
        assert_eq!(y, vec![21.0, -1.0]);
    }

    #[test]
    fn normalize_unit_vector() {
        let mut a = vec![3.0, 4.0];
        let prior = normalize(&mut a);
        assert_eq!(prior, 5.0);
        assert!((norm2(&a) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_zero_is_noop() {
        let mut a = vec![0.0, 0.0];
        assert_eq!(normalize(&mut a), 0.0);
        assert_eq!(a, vec![0.0, 0.0]);
    }

    #[test]
    fn orthogonalize_removes_component() {
        let u = [1.0, 0.0];
        let mut a = vec![5.0, 2.0];
        orthogonalize_against(&mut a, &u);
        assert_eq!(a, vec![0.0, 2.0]);
    }
}
