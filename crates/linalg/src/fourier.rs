//! Analytic Fourier eigenbasis of 2D tori.
//!
//! The diffusion matrix of a `rows × cols` torus (homogeneous model,
//! `α = 1/5`) is diagonalized by the 2D discrete Fourier basis: mode
//! `(p, q)` has eigenvalue
//! `μ(p,q) = 1 − (1/5)·(4 − 2cos(2πp/rows) − 2cos(2πq/cols))`.
//!
//! The paper (Figures 7 and 15) tracks the per-eigenvector load
//! coefficients `a` from `V·a = x(t)` with LAPACK. Here the same
//! information comes from a 2D DFT in `O(n·(rows+cols))` per round: the
//! magnitude of the projection of the load vector onto the (real,
//! orthonormal) eigenspace of a conjugate mode pair `{(p,q), (−p,−q)}` is
//! `√2·|X(p,q)|/√n` (or `|X(p,q)|/√n` for self-conjugate modes), where `X`
//! is the unitary-free DFT of the load grid.

use std::f64::consts::PI;

/// Coefficient of one canonical Fourier mode of the torus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeCoefficient {
    /// Row frequency in `0..rows`.
    pub p: usize,
    /// Column frequency in `0..cols`.
    pub q: usize,
    /// Diffusion-matrix eigenvalue `μ(p, q)` of this mode.
    pub eigenvalue: f64,
    /// Magnitude of the load projection onto the mode's real eigenspace.
    pub amplitude: f64,
    /// 1-based rank of the eigenvalue in descending order over canonical
    /// modes (rank 1 is the constant mode with `μ = 1`).
    pub rank: usize,
}

/// Precomputed DFT tables and eigen-rank order for a `rows × cols` torus.
pub struct TorusModes {
    rows: usize,
    cols: usize,
    /// cos/sin tables: `col_cos[q * cols + c] = cos(2π·q·c/cols)` etc.
    col_cos: Vec<f64>,
    col_sin: Vec<f64>,
    row_cos: Vec<f64>,
    row_sin: Vec<f64>,
    /// Canonical modes `(p, q, eigenvalue, rank, self_conjugate)`.
    canonical: Vec<(usize, usize, f64, usize, bool)>,
}

impl TorusModes {
    /// Builds the mode tables for a torus with both sides ≥ 3.
    ///
    /// # Panics
    ///
    /// Panics if a side is < 3 (the `α = 1/5` eigenvalue formula assumes
    /// degree-4 tori).
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows >= 3 && cols >= 3, "torus sides must be >= 3");
        let mut col_cos = vec![0.0; cols * cols];
        let mut col_sin = vec![0.0; cols * cols];
        for q in 0..cols {
            for c in 0..cols {
                let ang = 2.0 * PI * (q * c % cols) as f64 / cols as f64;
                col_cos[q * cols + c] = ang.cos();
                col_sin[q * cols + c] = ang.sin();
            }
        }
        let mut row_cos = vec![0.0; rows * rows];
        let mut row_sin = vec![0.0; rows * rows];
        for p in 0..rows {
            for r in 0..rows {
                let ang = 2.0 * PI * (p * r % rows) as f64 / rows as f64;
                row_cos[p * rows + r] = ang.cos();
                row_sin[p * rows + r] = ang.sin();
            }
        }
        // Canonical representatives of conjugate pairs, ranked by
        // eigenvalue (descending).
        let mut canonical: Vec<(usize, usize, f64, usize, bool)> = Vec::new();
        for p in 0..rows {
            for q in 0..cols {
                let (cp, cq) = ((rows - p) % rows, (cols - q) % cols);
                if (p, q) > (cp, cq) {
                    continue; // conjugate partner is canonical
                }
                let self_conj = (p, q) == (cp, cq);
                canonical.push((p, q, eigenvalue(rows, cols, p, q), 0, self_conj));
            }
        }
        canonical.sort_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .expect("finite")
                .then_with(|| (a.0, a.1).cmp(&(b.0, b.1)))
        });
        for (rank, m) in canonical.iter_mut().enumerate() {
            m.3 = rank + 1;
        }
        Self {
            rows,
            cols,
            col_cos,
            col_sin,
            row_cos,
            row_sin,
            canonical,
        }
    }

    /// Number of canonical modes (conjugate pairs counted once).
    pub fn mode_count(&self) -> usize {
        self.canonical.len()
    }

    /// Eigenvalue of mode `(p, q)`.
    pub fn eigenvalue(&self, p: usize, q: usize) -> f64 {
        eigenvalue(self.rows, self.cols, p, q)
    }

    /// Projects the row-major load grid onto every canonical mode.
    ///
    /// Returns coefficients ordered by eigenvalue rank (rank 1 = constant
    /// mode first).
    ///
    /// # Panics
    ///
    /// Panics if `loads.len() != rows·cols`.
    pub fn coefficients(&self, loads: &[f64]) -> Vec<ModeCoefficient> {
        let (rows, cols) = (self.rows, self.cols);
        assert_eq!(loads.len(), rows * cols, "load grid shape mismatch");
        let n = (rows * cols) as f64;
        // Pass 1: DFT along columns of each row -> F[r][q] (complex).
        let mut fre = vec![0.0; rows * cols];
        let mut fim = vec![0.0; rows * cols];
        for r in 0..rows {
            let row = &loads[r * cols..(r + 1) * cols];
            for q in 0..cols {
                let (mut re, mut im) = (0.0, 0.0);
                let ct = &self.col_cos[q * cols..(q + 1) * cols];
                let st = &self.col_sin[q * cols..(q + 1) * cols];
                for c in 0..cols {
                    re += row[c] * ct[c];
                    im -= row[c] * st[c];
                }
                fre[r * cols + q] = re;
                fim[r * cols + q] = im;
            }
        }
        // Pass 2: DFT along rows for each canonical (p, q).
        let mut out = Vec::with_capacity(self.canonical.len());
        for &(p, q, eigenvalue, rank, self_conj) in &self.canonical {
            let ct = &self.row_cos[p * rows..(p + 1) * rows];
            let st = &self.row_sin[p * rows..(p + 1) * rows];
            let (mut re, mut im) = (0.0, 0.0);
            for r in 0..rows {
                let (fr, fi) = (fre[r * cols + q], fim[r * cols + q]);
                // (fr + i·fi) · (cos − i·sin)
                re += fr * ct[r] + fi * st[r];
                im += fi * ct[r] - fr * st[r];
            }
            let mag = (re * re + im * im).sqrt();
            let amplitude = if self_conj {
                mag / n.sqrt()
            } else {
                std::f64::consts::SQRT_2 * mag / n.sqrt()
            };
            out.push(ModeCoefficient {
                p,
                q,
                eigenvalue,
                amplitude,
                rank,
            });
        }
        out.sort_by_key(|m| m.rank);
        out
    }

    /// The non-constant mode with the largest amplitude ("leading
    /// eigenvector" in the paper's Figure 7), or `None` if all amplitudes
    /// vanish.
    pub fn leading(coeffs: &[ModeCoefficient]) -> Option<&ModeCoefficient> {
        coeffs
            .iter()
            .filter(|m| m.rank > 1)
            .filter(|m| m.amplitude > 0.0)
            .max_by(|a, b| a.amplitude.partial_cmp(&b.amplitude).expect("finite"))
    }
}

/// Eigenvalue `μ(p, q) = 1 − (1/5)(4 − 2cos(2πp/rows) − 2cos(2πq/cols))`.
fn eigenvalue(rows: usize, cols: usize, p: usize, q: usize) -> f64 {
    1.0 - (4.0
        - 2.0 * (2.0 * PI * p as f64 / rows as f64).cos()
        - 2.0 * (2.0 * PI * q as f64 / cols as f64).cos())
        / 5.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::norm2;

    #[test]
    fn constant_mode_has_eigenvalue_one_and_full_mass() {
        let tm = TorusModes::new(4, 4);
        let coeffs = tm.coefficients(&[2.5; 16]);
        let c0 = &coeffs[0];
        assert_eq!((c0.p, c0.q), (0, 0));
        assert_eq!(c0.rank, 1);
        assert!((c0.eigenvalue - 1.0).abs() < 1e-12);
        // Projection of a constant grid onto 1/√n ⋅ 1 is 2.5·√n = 10.
        assert!((c0.amplitude - 10.0).abs() < 1e-9);
        for c in &coeffs[1..] {
            assert!(c.amplitude < 1e-9, "non-constant amplitude {c:?}");
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        // Σ amplitude² == ‖x‖² because the real eigenbasis is orthonormal.
        let tm = TorusModes::new(5, 6);
        let loads: Vec<f64> = (0..30).map(|i| ((i * 37) % 11) as f64 - 3.0).collect();
        let coeffs = tm.coefficients(&loads);
        let energy: f64 = coeffs.iter().map(|c| c.amplitude * c.amplitude).sum();
        let direct = norm2(&loads).powi(2);
        assert!(
            (energy - direct).abs() < 1e-8 * direct.max(1.0),
            "parseval violated: {energy} vs {direct}"
        );
    }

    #[test]
    fn pure_mode_isolates() {
        let (rows, cols) = (6, 8);
        let tm = TorusModes::new(rows, cols);
        // x[r][c] = cos(2π(2r/rows + 3c/cols)) is a pure (2,3) mode.
        let mut loads = vec![0.0; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                loads[r * cols + c] =
                    (2.0 * PI * (2.0 * r as f64 / rows as f64 + 3.0 * c as f64 / cols as f64))
                        .cos();
            }
        }
        let coeffs = tm.coefficients(&loads);
        let leading = TorusModes::leading(&coeffs).unwrap();
        let conj = ((rows - 2) % rows, (cols - 3) % cols);
        assert!(
            (leading.p, leading.q) == (2, 3) || (leading.p, leading.q) == conj,
            "leading mode {:?}",
            (leading.p, leading.q)
        );
        // All other modes are (numerically) silent.
        for c in coeffs
            .iter()
            .filter(|c| (c.p, c.q) != (leading.p, leading.q))
        {
            assert!(c.amplitude < 1e-9, "spurious mode {c:?}");
        }
    }

    #[test]
    fn eigenvalue_formula_extremes() {
        let tm = TorusModes::new(10, 10);
        assert!((tm.eigenvalue(0, 0) - 1.0).abs() < 1e-12);
        // Mode (5,5) on even sides: 1 - 8/5 = -0.6.
        assert!((tm.eigenvalue(5, 5) + 0.6).abs() < 1e-12);
    }

    #[test]
    fn ranks_are_descending_in_eigenvalue() {
        let tm = TorusModes::new(7, 5);
        let coeffs = tm.coefficients(&vec![0.0; 35]);
        for w in coeffs.windows(2) {
            assert!(w[0].eigenvalue >= w[1].eigenvalue - 1e-12);
            assert_eq!(w[0].rank + 1, w[1].rank);
        }
    }

    #[test]
    fn mode_count_accounts_for_conjugate_pairs() {
        // rows*cols total complex modes collapse into canonical pairs:
        // self-conjugate count for 4x4 is 4 -> (16-4)/2 + 4 = 10.
        let tm = TorusModes::new(4, 4);
        assert_eq!(tm.mode_count(), 10);
        // Odd sides: only (0,0) is self-conjugate -> (15-1)/2+1 = 8.
        let tm = TorusModes::new(3, 5);
        assert_eq!(tm.mode_count(), 8);
    }
}
