//! Power iteration with deflation for large sparse symmetric operators.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::vector::{dot, normalize, orthogonalize_against};

/// Options for [`dominant_eigenvalue`].
#[derive(Debug, Clone, Copy)]
pub struct PowerOptions {
    /// Stop when the Rayleigh quotient changes by less than this between
    /// iterations.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
    /// RNG seed for the random start vector.
    pub seed: u64,
}

impl Default for PowerOptions {
    fn default() -> Self {
        Self {
            tolerance: 1e-12,
            max_iterations: 50_000,
            seed: 0x5eed,
        }
    }
}

/// Result of a power iteration.
#[derive(Debug, Clone, Copy)]
pub struct PowerResult {
    /// Rayleigh-quotient estimate of the dominant eigenvalue.
    pub value: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was met before the iteration cap.
    pub converged: bool,
}

/// Estimates the dominant (largest-magnitude) eigenvalue of the symmetric
/// operator `apply`, deflating the directions in `deflate` (which must be
/// unit vectors).
///
/// For operators with a known non-negative spectrum (after shifting) the
/// Rayleigh quotient converges monotonically; the caller is responsible for
/// shifting when signed spectra would make plain power iteration oscillate.
pub fn dominant_eigenvalue<F>(
    n: usize,
    mut apply: F,
    deflate: &[&[f64]],
    opts: PowerOptions,
) -> PowerResult
where
    F: FnMut(&[f64], &mut [f64]),
{
    assert!(n > 0, "power iteration needs a non-empty operator");
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut v: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
    for d in deflate {
        orthogonalize_against(&mut v, d);
    }
    if normalize(&mut v) == 0.0 {
        // Degenerate: the random vector was (numerically) inside the
        // deflated space; restart deterministically.
        v = vec![0.0; n];
        v[0] = 1.0;
        for d in deflate {
            orthogonalize_against(&mut v, d);
        }
        normalize(&mut v);
    }
    let mut next = vec![0.0; n];
    let mut rayleigh = 0.0f64;
    for it in 1..=opts.max_iterations {
        apply(&v, &mut next);
        for d in deflate {
            orthogonalize_against(&mut next, d);
        }
        let new_rayleigh = dot(&v, &next);
        std::mem::swap(&mut v, &mut next);
        if normalize(&mut v) == 0.0 {
            // Operator annihilated the vector: dominant deflated eigenvalue
            // is 0.
            return PowerResult {
                value: 0.0,
                iterations: it,
                converged: true,
            };
        }
        if (new_rayleigh - rayleigh).abs() <= opts.tolerance * new_rayleigh.abs().max(1.0) {
            return PowerResult {
                value: new_rayleigh,
                iterations: it,
                converged: true,
            };
        }
        rayleigh = new_rayleigh;
    }
    PowerResult {
        value: rayleigh,
        iterations: opts.max_iterations,
        converged: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;

    fn apply_dense(m: &DenseMatrix) -> impl FnMut(&[f64], &mut [f64]) + '_ {
        move |x, y| m.matvec(x, y)
    }

    #[test]
    fn finds_dominant_of_diagonal() {
        let mut m = DenseMatrix::zeros(3, 3);
        m[(0, 0)] = 0.5;
        m[(1, 1)] = 2.0;
        m[(2, 2)] = -1.0;
        let r = dominant_eigenvalue(3, apply_dense(&m), &[], PowerOptions::default());
        assert!(r.converged);
        assert!((r.value - 2.0).abs() < 1e-9);
    }

    #[test]
    fn deflation_reveals_second_eigenvalue() {
        let mut m = DenseMatrix::zeros(3, 3);
        m[(0, 0)] = 3.0;
        m[(1, 1)] = 2.0;
        m[(2, 2)] = 1.0;
        let e1 = [1.0, 0.0, 0.0];
        let r = dominant_eigenvalue(3, apply_dense(&m), &[&e1], PowerOptions::default());
        assert!((r.value - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_operator_converges_to_zero() {
        let m = DenseMatrix::zeros(4, 4);
        let r = dominant_eigenvalue(4, apply_dense(&m), &[], PowerOptions::default());
        assert!(r.converged);
        assert_eq!(r.value, 0.0);
    }

    #[test]
    fn respects_iteration_cap() {
        // Two eigenvalues of equal magnitude and opposite sign make the
        // plain Rayleigh quotient oscillate; the cap must terminate it.
        let mut m = DenseMatrix::zeros(2, 2);
        m[(0, 0)] = 1.0;
        m[(1, 1)] = -1.0;
        let opts = PowerOptions {
            max_iterations: 100,
            ..Default::default()
        };
        let r = dominant_eigenvalue(2, apply_dense(&m), &[], opts);
        assert!(r.iterations <= 100);
    }
}
