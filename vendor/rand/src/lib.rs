//! Minimal, dependency-free stand-in for the [`rand`] crate.
//!
//! The build environment has no network access, so the real `rand` cannot
//! be fetched from crates.io. This shim implements the API surface the
//! workspace uses — [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`RngExt::random_range`], and [`seq::SliceRandom::shuffle`] — on top of
//! a SplitMix64-seeded xoshiro256++ generator. Streams are deterministic
//! per seed but do **not** match the real `StdRng` byte-for-byte; all
//! workspace consumers only rely on seed-stable, well-mixed streams.
//!
//! [`rand`]: https://crates.io/crates/rand

use std::ops::Range;

/// Generators seedable from integers or byte arrays.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core generator interface.
pub trait RngCore {
    /// Next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw in `[0, 1)` with 53 random bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Types drawable uniformly from a half-open range.
pub trait SampleRange {
    /// The drawn value type.
    type Output;
    /// Draws one value from the range.
    fn sample(self, rng: &mut impl RngCore) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut impl RngCore) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience draws on any [`RngCore`] (the `rand` `Rng`/`RngExt` surface).
pub trait RngExt: RngCore {
    /// Uniform draw from a half-open range.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> RngExt for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64 (matching the reference seeding recipe).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence-related helpers (the `rand::seq` surface).
pub mod seq {
    use super::RngCore;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle(&mut self, rng: &mut impl RngCore);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle(&mut self, rng: &mut impl RngCore) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<f64> = (0..32).map(|_| a.random_range(0.0..1.0f64)).collect();
        let ys: Vec<f64> = (0..32).map(|_| b.random_range(0.0..1.0f64)).collect();
        let zs: Vec<f64> = (0..32).map(|_| c.random_range(0.0..1.0f64)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
        assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
    }

    #[test]
    fn integer_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-4i64..9);
            assert!((-4..9).contains(&y));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
