//! Minimal, deterministic stand-in for the [`proptest`] crate.
//!
//! The build environment of this workspace has no network access, so the
//! real `proptest` cannot be fetched from crates.io. This vendored shim
//! implements exactly the API surface the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_flat_map`, and `boxed`,
//! * range strategies for the integer types and `f64`,
//! * [`any`] for primitive integers, [`Just`], tuple strategies,
//! * [`collection::vec`] with fixed or ranged sizes,
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], and [`prop_assume!`] macros,
//! * [`ProptestConfig::with_cases`].
//!
//! Unlike the real crate there is **no shrinking** and the random stream
//! is a fixed function of the test name, so every run (local and CI)
//! exercises the same cases. That trades minimality of counterexamples
//! for reproducibility, which is the property this workspace cares about.
//!
//! [`proptest`]: https://crates.io/crates/proptest

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// FNV-1a hash of the test name; used to derive a per-test seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h | 1
}

/// Result of one generated test case; `Reject` skips the case
/// (produced by [`prop_assume!`]).
#[derive(Debug)]
pub enum TestCaseError {
    /// The case's assumptions do not hold; skip it.
    Reject,
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and draws
    /// from the result.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
}

/// Types with a canonical full-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the full domain of `T`.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! tuple_strategy {
    ($(($($n:ident $idx:tt),+);)*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
}

/// Uniform choice among type-erased alternatives (see [`prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over the given alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let k = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[k].generate(rng)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Number of elements a [`vec()`] strategy generates.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of values from `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a condition inside a generated test case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a generated test case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a generated test case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when its assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (@cfg ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
            let mut executed = 0u32;
            let mut attempts = 0u32;
            while executed < config.cases && attempts < config.cases * 16 {
                attempts += 1;
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => executed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::collection::vec;
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let x = (3usize..=24).generate(&mut rng);
            assert!((3..=24).contains(&x));
            let y = (-5i64..7).generate(&mut rng);
            assert!((-5..7).contains(&y));
            let f = (0.25f64..1.75).generate(&mut rng);
            assert!((0.25..1.75).contains(&f));
        }
    }

    #[test]
    fn vec_respects_size() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = vec(0u32..10, 3..6).generate(&mut rng);
            assert!((3..6).contains(&v.len()));
            let w = vec(0u32..10, 4usize).generate(&mut rng);
            assert_eq!(w.len(), 4);
        }
    }

    #[test]
    fn oneof_covers_all_options() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::new(3);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn deterministic_per_seed() {
        let s = (0u64..1000, 0.0f64..1.0);
        let mut a = TestRng::new(9);
        let mut b = TestRng::new(9);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: patterns, assume, and assertions.
        #[test]
        fn macro_roundtrip((a, b) in (0u32..50, 0u32..50), c in 1usize..4) {
            prop_assume!(a != b);
            prop_assert!(c >= 1);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, b);
        }
    }
}
