//! Minimal, dependency-free stand-in for the [`criterion`] benchmark
//! harness.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This shim implements the API surface the workspace
//! benches use — [`Criterion`], [`BenchmarkId`], benchmark groups,
//! [`criterion_group!`], [`criterion_main!`], [`black_box`] — with a
//! simple mean/min timing loop instead of criterion's statistics. Results
//! print one line per benchmark:
//!
//! ```text
//! round/fos_discrete/torus64  time: [mean 182.4 µs, min 180.1 µs, 10 samples]
//! ```
//!
//! [`criterion`]: https://crates.io/crates/criterion

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function-name/parameter pair (`fname/param`).
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    /// Mean and minimum nanoseconds per iteration, filled by [`Self::iter`].
    result: Option<(f64, f64, usize)>,
}

impl Bencher {
    /// Measures `routine`: warms up, then runs timed samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let est = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let samples = self.sample_size.max(2);
        let budget = self.measurement_time.as_secs_f64();
        let iters_per_sample = ((budget / samples as f64 / est.max(1e-9)) as u64).max(1);
        let mut mean_sum = 0.0;
        let mut min_ns = f64::INFINITY;
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let ns = t0.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            mean_sum += ns;
            if ns < min_ns {
                min_ns = ns;
            }
        }
        self.result = Some((mean_sum / samples as f64, min_ns, samples));
    }
}

/// A named group of related benchmarks; the group can override the
/// driver's sample count and timing budgets.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Overrides the warm-up duration for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark and prints its timing line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            result: None,
        };
        f(&mut b);
        let label = format!("{}/{}", self.name, id.id);
        match b.result {
            Some((mean, min, samples)) => println!(
                "{label}  time: [mean {}, min {}, {samples} samples]",
                fmt_ns(mean),
                fmt_ns(min)
            ),
            None => println!("{label}  time: [not measured]"),
        }
        self
    }

    /// Ends the group (formatting no-op).
    pub fn finish(self) {}
}

/// Top-level benchmark driver configuration.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Warm-up duration before measurement.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let name = id.into().id;
        self.benchmark_group(name)
            .bench_function(BenchmarkId::from_parameter(""), f);
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; accept and
            // ignore them (plus any filter) the way criterion does.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bencher_measures_something() {
        let c = quick();
        let mut b = Bencher {
            sample_size: c.sample_size,
            warm_up_time: c.warm_up_time,
            measurement_time: c.measurement_time,
            result: None,
        };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        let (mean, min, samples) = b.result.unwrap();
        assert!(mean > 0.0 && min > 0.0 && samples == 2);
        assert!(min <= mean);
    }

    #[test]
    fn group_runs_and_ids_format() {
        let mut c = quick();
        let mut g = c.benchmark_group("g");
        g.bench_function(BenchmarkId::new("f", "p"), |b| b.iter(|| 1 + 1));
        g.bench_function(BenchmarkId::from_parameter(42), |b| b.iter(|| 2 + 2));
        g.finish();
    }

    criterion_group! {
        name = shim_group;
        config = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        targets = target_a
    }

    fn target_a(c: &mut Criterion) {
        c.benchmark_group("t")
            .bench_function("a", |b| b.iter(|| ()));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        shim_group();
    }
}
