//! # sodiff — discrete diffusion load balancing
//!
//! Umbrella crate for the `sodiff` workspace, a from-scratch Rust
//! reproduction of *Akbari, Berenbrink, Elsässer, Kaaser: "Discrete Load
//! Balancing in Heterogeneous Networks with a Focus on Second-Order
//! Diffusion"* (ICDCS 2015).
//!
//! It re-exports the library layers:
//!
//! * [`graph`] — CSR graphs, the paper's network generators, and the
//!   declarative [`TopologySpec`],
//! * [`linalg`] — eigensolvers and spectral analysis of diffusion matrices,
//! * [`core`] — the diffusion schemes (FOS/SOS, continuous and discrete),
//!   the randomized rounding framework, hybrid switching, metrics, and the
//!   theory-bound calculators,
//! * [`viz`] — PGM/PPM rendering of torus load wavefronts,
//!
//! plus the unified experiment API at the crate root: the typestate
//! [`Experiment`] builder, text-serializable [`ScenarioSpec`]s, and the
//! batch [`Driver`] that executes scenario files over one persistent
//! worker pool — with exact checkpoint/resume ([`core::checkpoint`]),
//! durable recovery journals, and bounded retries for crashed scenarios.
//!
//! # Quickstart
//!
//! ```
//! use sodiff::prelude::*;
//! use sodiff::graph::generators;
//!
//! // A 16x16 torus with all load initially on node 0 (the paper default).
//! let graph = generators::torus2d(16, 16);
//! let spectrum = sodiff::linalg::spectral::analyze(&graph, &Speeds::uniform(graph.node_count()));
//!
//! let report = Experiment::on(&graph)
//!     .discrete(Rounding::randomized(42))
//!     .sos(spectrum.beta_opt())
//!     .stop(StopCondition::MaxRounds(400))
//!     .build()
//!     .expect("valid experiment")
//!     .run();
//! assert!(report.final_metrics.max_minus_avg < 20.0);
//! ```
//!
//! The same experiment as data, through the batch driver:
//!
//! ```
//! use sodiff::{Driver, ScenarioSpec};
//!
//! let specs = ScenarioSpec::parse_many(
//!     "name=quickstart topology=torus2d:16:16 scheme=sos_opt seed=42 stop=rounds:400",
//! )
//! .unwrap();
//! let batch = Driver::new().run_batch(&specs);
//! assert!(batch.errors.is_empty());
//! assert!(batch.scenarios[0].report.final_metrics.max_minus_avg < 20.0);
//! ```

pub use sodiff_core as core;
pub use sodiff_graph as graph;
pub use sodiff_linalg as linalg;
pub use sodiff_viz as viz;

pub use sodiff_core::{
    read_checkpoint, write_checkpoint, BatchReport, BuildError, Checkpoint, CheckpointConfig,
    CheckpointError, CheckpointPolicy, Driver, Experiment, ExperimentBuilder, FaultChannel,
    FaultEvents, FaultSpec, InitSpec, InitialLoad, MatchingStrategy, MetricsSnapshot, Mode,
    ModeSpec, ParseError, Rounding, RoundingSpec, RunReport, ScenarioError, ScenarioFailure,
    ScenarioReport, ScenarioSpec, Scheme, SchemeSpec, Snapshot, SpeedsSpec, StopCondition,
    StopReason, StopSpec, SwitchPolicy,
};
pub use sodiff_graph::{Speeds, TopologySpec};

/// Convenient glob import: `use sodiff::prelude::*;` (re-exports
/// [`sodiff_core::prelude`]).
pub mod prelude {
    pub use sodiff_core::prelude::*;
}
