//! # sodiff — discrete diffusion load balancing
//!
//! Umbrella crate for the `sodiff` workspace, a from-scratch Rust
//! reproduction of *Akbari, Berenbrink, Elsässer, Kaaser: "Discrete Load
//! Balancing in Heterogeneous Networks with a Focus on Second-Order
//! Diffusion"* (ICDCS 2015).
//!
//! It re-exports the three library layers:
//!
//! * [`graph`] — CSR graphs and the paper's network generators,
//! * [`linalg`] — eigensolvers and spectral analysis of diffusion matrices,
//! * [`core`] — the diffusion schemes (FOS/SOS, continuous and discrete),
//!   the randomized rounding framework, hybrid switching, metrics, and the
//!   theory-bound calculators,
//! * [`viz`] — PGM/PPM rendering of torus load wavefronts.
//!
//! # Quickstart
//!
//! ```
//! use sodiff::core::prelude::*;
//! use sodiff::graph::generators;
//!
//! // A 16x16 torus with all load initially on node 0.
//! let graph = generators::torus2d(16, 16);
//! let spectrum = sodiff::linalg::spectral::analyze(&graph, &Speeds::uniform(graph.node_count()));
//! let beta = beta_opt(spectrum.lambda);
//!
//! let config = SimulationConfig::discrete(Scheme::sos(beta), Rounding::randomized(42));
//! let mut sim = Simulator::new(&graph, config, InitialLoad::point(0, 1000 * 256));
//! let report = sim.run_until(StopCondition::MaxRounds(400));
//! assert!(report.final_metrics.max_minus_avg < 20.0);
//! ```

pub use sodiff_core as core;
pub use sodiff_graph as graph;
pub use sodiff_linalg as linalg;
pub use sodiff_viz as viz;
